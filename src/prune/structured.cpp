#include "prune/structured.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace fedtiny::prune {

std::vector<float> filter_l1_norms(const Tensor& weight, int64_t out_channels) {
  assert(out_channels > 0 && weight.numel() % out_channels == 0);
  const int64_t fan_in = weight.numel() / out_channels;
  std::vector<float> norms(static_cast<size_t>(out_channels), 0.0f);
  const float* w = weight.data();
  for (int64_t f = 0; f < out_channels; ++f) {
    float s = 0.0f;
    for (int64_t j = 0; j < fan_in; ++j) s += std::fabs(w[f * fan_in + j]);
    norms[static_cast<size_t>(f)] = s;
  }
  return norms;
}

int64_t ChannelPlan::total_filters() const {
  int64_t n = 0;
  for (const auto& layer : keep) n += static_cast<int64_t>(layer.size());
  return n;
}

int64_t ChannelPlan::kept_filters() const {
  int64_t n = 0;
  for (const auto& layer : keep) {
    for (uint8_t v : layer) n += v;
  }
  return n;
}

ChannelPlan structured_channel_plan(const nn::Model& model, double channel_density) {
  ChannelPlan plan;
  for (int idx : model.prunable_indices()) {
    const auto* param = model.params()[static_cast<size_t>(idx)];
    // Prunable weights are stored [out, fan_in] (conv im2col layout and
    // linear both satisfy this).
    const int64_t out_channels = param->value.dim(0);
    const auto norms = filter_l1_norms(param->value, out_channels);

    const auto keep_count = std::clamp<int64_t>(
        static_cast<int64_t>(std::llround(channel_density * static_cast<double>(out_channels))),
        1, out_channels);
    std::vector<int64_t> order(static_cast<size_t>(out_channels));
    std::iota(order.begin(), order.end(), 0);
    std::nth_element(order.begin(), order.begin() + keep_count, order.end(),
                     [&](int64_t a, int64_t b) {
                       const float na = norms[static_cast<size_t>(a)];
                       const float nb = norms[static_cast<size_t>(b)];
                       return na != nb ? na > nb : a < b;
                     });
    std::vector<uint8_t> keep(static_cast<size_t>(out_channels), 0);
    for (int64_t i = 0; i < keep_count; ++i) keep[static_cast<size_t>(order[static_cast<size_t>(i)])] = 1;
    plan.keep.push_back(std::move(keep));
  }
  return plan;
}

MaskSet expand_channel_plan(const nn::Model& model, const ChannelPlan& plan) {
  assert(plan.keep.size() == model.prunable_indices().size());
  MaskSet mask;
  for (size_t l = 0; l < plan.keep.size(); ++l) {
    const auto* param =
        model.params()[static_cast<size_t>(model.prunable_indices()[l])];
    const int64_t out_channels = param->value.dim(0);
    const int64_t fan_in = param->value.numel() / out_channels;
    std::vector<uint8_t> layer(static_cast<size_t>(param->value.numel()), 0);
    for (int64_t f = 0; f < out_channels; ++f) {
      if (plan.keep[l][static_cast<size_t>(f)] == 0) continue;
      std::fill(layer.begin() + static_cast<int64_t>(f * fan_in),
                layer.begin() + static_cast<int64_t>((f + 1) * fan_in), uint8_t{1});
    }
    mask.append_layer(std::move(layer));
  }
  return mask;
}

MaskSet structured_prune(nn::Model& model, double channel_density) {
  auto plan = structured_channel_plan(model, channel_density);
  auto mask = expand_channel_plan(model, plan);
  mask.apply(model);
  return mask;
}

}  // namespace fedtiny::prune
