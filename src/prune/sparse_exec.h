// Bridges pruning masks to the nn layers' sparse forward dispatch: compacts
// each prunable conv/linear weight whose mask density is at or below a
// threshold into CSR (tensor/sparse.h) so eval-mode forwards run the sparse
// kernels. The dense path — masked weights stored as zeros — remains the
// fallback and the numerical oracle.
#pragma once

#include "nn/model.h"
#include "prune/mask.h"

namespace fedtiny::prune {

struct SparseExecReport {
  int sparse_layers = 0;  // layers now running the CSR forward
  int dense_layers = 0;   // prunable layers left on the dense path
  int64_t csr_nnz = 0;    // total values held in CSR form
};

/// Install CSR forwards on every prunable layer with density <= max_density,
/// compacting the model's *current* weight values. Call again after any
/// weight or mask change (the compaction is a per-round snapshot, not a
/// live view). max_density <= 0 clears everything. train = true additionally
/// enables the masked sparse training path (train-mode CSR forward, CSR
/// input gradients, mask-restricted weight gradients); during local SGD call
/// refresh_sparse_values after every optimizer step so the CSR values track
/// the moving dense weights.
SparseExecReport install_sparse_execution(nn::Model& model, const MaskSet& mask,
                                          float max_density, bool train = false);

/// Re-read every installed CSR weight's values from its dense weight (the
/// structure is mask-determined and unchanged). O(nnz); no-op on layers
/// without an installed CSR.
void refresh_sparse_values(nn::Model& model);

/// Remove all installed CSR weights; every forward runs dense again.
void clear_sparse_execution(nn::Model& model);

}  // namespace fedtiny::prune
