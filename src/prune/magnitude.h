// Magnitude-based pruning (global and layer-wise) plus generic
// score-to-mask conversion shared by all scoring methods.
#pragma once

#include <vector>

#include "nn/model.h"
#include "prune/mask.h"

namespace fedtiny::prune {

/// One score vector per prunable layer (aligned with prunable_indices()).
using ScoreSet = std::vector<std::vector<float>>;

/// Keep the top `density` fraction of prunable weights by global score
/// ranking. Ties broken by index for determinism.
MaskSet mask_from_scores_global(const ScoreSet& scores, double density);

/// Keep the top `densities[l]` fraction of layer l by score ranking.
MaskSet mask_from_scores_layerwise(const ScoreSet& scores, const std::vector<double>& densities);

/// |w| scores from the model's current prunable weights.
ScoreSet magnitude_scores(const nn::Model& model);

/// Global magnitude pruning at the given density (FL-PQSU's unstructured
/// variant with uniform ranking over all layers).
MaskSet magnitude_prune_global(const nn::Model& model, double density);

/// Layer-wise magnitude pruning: density per prunable layer.
MaskSet magnitude_prune_layerwise(const nn::Model& model, const std::vector<double>& densities);

/// Uniform layer-wise density vector.
std::vector<double> uniform_densities(const nn::Model& model, double density);

}  // namespace fedtiny::prune
