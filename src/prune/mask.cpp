#include "prune/mask.h"

#include <cassert>

namespace fedtiny::prune {

MaskSet MaskSet::ones_like(const nn::Model& model) {
  MaskSet m;
  m.masks_.reserve(model.prunable_indices().size());
  for (int idx : model.prunable_indices()) {
    const auto n = static_cast<size_t>(model.params()[static_cast<size_t>(idx)]->value.numel());
    m.masks_.emplace_back(n, uint8_t{1});
  }
  return m;
}

int64_t MaskSet::total() const {
  int64_t n = 0;
  for (const auto& m : masks_) n += static_cast<int64_t>(m.size());
  return n;
}

int64_t MaskSet::nnz() const {
  int64_t n = 0;
  for (const auto& m : masks_) {
    for (uint8_t v : m) n += v;
  }
  return n;
}

double MaskSet::density() const {
  const int64_t t = total();
  return t > 0 ? static_cast<double>(nnz()) / static_cast<double>(t) : 0.0;
}

std::vector<double> MaskSet::layer_densities() const {
  std::vector<double> out;
  out.reserve(masks_.size());
  for (const auto& m : masks_) {
    int64_t kept = 0;
    for (uint8_t v : m) kept += v;
    out.push_back(m.empty() ? 0.0 : static_cast<double>(kept) / static_cast<double>(m.size()));
  }
  return out;
}

void MaskSet::apply(nn::Model& model) const {
  const auto& indices = model.prunable_indices();
  assert(indices.size() == masks_.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    auto w = model.params()[static_cast<size_t>(indices[i])]->value.flat();
    const auto& m = masks_[i];
    assert(w.size() == m.size());
    for (size_t j = 0; j < w.size(); ++j) {
      if (m[j] == 0) w[j] = 0.0f;
    }
  }
}

std::vector<const std::vector<uint8_t>*> MaskSet::for_params(const nn::Model& model) const {
  std::vector<const std::vector<uint8_t>*> out(model.params().size(), nullptr);
  const auto& indices = model.prunable_indices();
  assert(indices.size() == masks_.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    out[static_cast<size_t>(indices[i])] = &masks_[i];
  }
  return out;
}

}  // namespace fedtiny::prune
