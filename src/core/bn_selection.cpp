#include "core/bn_selection.h"

#include <algorithm>
#include <cassert>

#include "data/partition.h"
#include "fl/evaluate.h"
#include "fl/server.h"
#include "metrics/comms.h"
#include "metrics/flops.h"
#include "tensor/rng.h"

namespace fedtiny::core {

BNSelectionReport select_coarse_mask(nn::Model& model, const data::Dataset& train_data,
                                     const data::PartitionArena& partitions,
                                     const BNSelectionConfig& config) {
  BNSelectionReport report;
  const std::vector<Tensor> dense_state = model.state();

  Rng rng(config.seed, /*stream=*/0xb52);
  const auto pool = prune::generate_candidate_pool(model, config.pool, rng);
  const auto dev = data::development_split(partitions, config.dev_fraction);

  double total_dev = 0.0;
  for (const auto& d : dev) total_dev += static_cast<double>(d.size());

  std::vector<std::vector<Tensor>> winning_bn(pool.size());
  report.candidate_losses.assign(pool.size(), 0.0);

  for (size_t c = 0; c < pool.size(); ++c) {
    // Install candidate: dense weights + candidate mask.
    model.set_state(dense_state);
    pool[c].apply(model);

    if (config.adaptive) {
      // Device-side BN measurement + server-side weighted aggregation
      // (Alg. 1 lines 2-13).
      fl::StateAccumulator bn_acc;
      for (size_t k = 0; k < dev.size(); ++k) {
        if (dev[k].empty()) continue;
        model.begin_stat_refresh();
        for (const auto& chunk : data::chunk_indices(dev[k], config.batch_size)) {
          auto batch = data::gather_batch(train_data, chunk);
          (void)model.forward(batch.x, nn::Mode::kStatRefresh);
        }
        model.finalize_stat_refresh();
        bn_acc.add(model.bn_stats(), static_cast<double>(dev[k].size()) / total_dev);
      }
      winning_bn[c] = bn_acc.average();
      model.set_bn_stats(winning_bn[c]);
    }

    // Device-side evaluation with the (possibly refreshed) statistics
    // (Alg. 1 lines 14-26).
    double loss = 0.0;
    for (size_t k = 0; k < dev.size(); ++k) {
      if (dev[k].empty()) continue;
      loss += fl::evaluate_loss(model, train_data, dev[k], config.batch_size) *
              (static_cast<double>(dev[k].size()) / total_dev);
    }
    report.candidate_losses[static_cast<size_t>(c)] = loss;
  }

  const auto best = std::min_element(report.candidate_losses.begin(),
                                     report.candidate_losses.end());
  report.selected_candidate = static_cast<int>(best - report.candidate_losses.begin());
  report.mask = pool[static_cast<size_t>(report.selected_candidate)];

  // Restore: dense weights + winning mask (+ its BN statistics).
  model.set_state(dense_state);
  report.mask.apply(model);
  if (config.adaptive && !winning_bn[static_cast<size_t>(report.selected_candidate)].empty()) {
    model.set_bn_stats(winning_bn[static_cast<size_t>(report.selected_candidate)]);
  }

  // ---- Cost accounting (per device; §IV-D / Table II). ----
  auto cost = metrics::analyze_model(model);
  int64_t bn_channels = 0;
  for (const auto* bn : model.bn_layers()) bn_channels += bn->channels();
  report.comm_bytes_per_device = metrics::bn_selection_comm_bytes(
      cost, report.mask.nnz(), static_cast<int>(pool.size()), bn_channels);
  const double mean_dev =
      total_dev / static_cast<double>(std::max(1, partitions.num_clients()));
  const double passes = config.adaptive ? 2.0 : 1.0;  // refresh pass + eval pass
  report.extra_flops_per_device = passes * static_cast<double>(pool.size()) * mean_dev *
                                  cost.sparse_forward_flops(report.mask.layer_densities());
  return report;
}

}  // namespace fedtiny::core
