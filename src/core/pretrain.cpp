#include "core/pretrain.h"

#include "nn/loss.h"
#include "nn/sgd.h"
#include "tensor/rng.h"

namespace fedtiny::core {

void server_pretrain(nn::Model& model, const data::Dataset& public_data,
                     const PretrainConfig& config) {
  if (public_data.size() == 0) return;
  nn::SGD sgd({config.lr, config.momentum, config.weight_decay});
  Rng rng(config.seed, /*stream=*/0x9ae7a11);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    auto perm = rng.permutation(public_data.size());
    for (const auto& chunk : data::chunk_indices(perm, config.batch_size)) {
      auto batch = data::gather_batch(public_data, chunk);
      model.zero_grad();
      Tensor logits = model.forward(batch.x, nn::Mode::kTrain);
      auto loss = nn::softmax_cross_entropy(logits, batch.y);
      model.backward(loss.grad_logits);
      sgd.step(model.params());
    }
  }
}

}  // namespace fedtiny::core
