// FedTinyTrainer: the paper's full pipeline on top of FederatedTrainer.
//
//   1. (caller) server pretrains the dense model on the public dataset
//   2. initialize(): adaptive BN selection picks the coarse-pruned mask
//   3. run(): sparse FedAvg with progressive pruning — on every pruning
//      round, devices upload top-a_l pruned-coordinate gradients for the
//      scheduled block's layers; the server grows/prunes each layer's mask
//      (Alg. 2) and the quota follows the cosine schedule.
#pragma once

#include "core/bn_selection.h"
#include "core/schedule.h"
#include "fl/trainer.h"

namespace fedtiny::core {

struct FedTinyConfig {
  BNSelectionConfig selection;
  PruningSchedule schedule;
  /// Disable the progressive pruning module (ablation: "adaptive BN
  /// selection" alone in Fig. 4).
  bool progressive_pruning = true;
};

class FedTinyTrainer : public fl::FederatedTrainer {
 public:
  FedTinyTrainer(nn::Model& model, const data::Dataset& train_data,
                 const data::Dataset& test_data, std::vector<std::vector<int64_t>> partitions,
                 fl::FLConfig fl_config, FedTinyConfig config);

  /// Run candidate selection on the model's current (pretrained) weights and
  /// install the winning mask. Must be called once before run().
  const BNSelectionReport& initialize();

  [[nodiscard]] const BNSelectionReport& selection_report() const { return selection_report_; }
  /// Total bounded-buffer capacity a device needs (max over rounds of
  /// sum of block quotas) — the paper's O(a_l) memory term.
  [[nodiscard]] int64_t max_topk_capacity() const { return max_topk_capacity_; }

 protected:
  std::vector<int64_t> pruned_grad_quota(int round) override;
  void after_aggregate(int round) override;
  double extra_device_flops(int round, const fl::RoundPlan& plan) override;
  double extra_comm_bytes(int round, const fl::RoundPlan& plan) override;

 private:
  /// Prunable-layer positions in the block scheduled for this round.
  [[nodiscard]] const std::vector<int>& block_for_round(int round) const;
  [[nodiscard]] std::vector<int64_t> quotas_for_round(int round);

  FedTinyConfig ft_config_;
  BNSelectionReport selection_report_;
  std::vector<std::vector<int>> blocks_;
  int64_t max_topk_capacity_ = 0;
  bool initialized_ = false;
};

}  // namespace fedtiny::core
