// Server-side pretraining on the public one-shot dataset D_s (§IV-A3: every
// method starts from a model pretrained on the server).
#pragma once

#include "data/dataset.h"
#include "nn/model.h"

namespace fedtiny::core {

struct PretrainConfig {
  int epochs = 2;
  int64_t batch_size = 32;
  float lr = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
  uint64_t seed = 1;
};

/// Plain dense SGD on the public dataset; updates the model in place.
void server_pretrain(nn::Model& model, const data::Dataset& public_data,
                     const PretrainConfig& config);

}  // namespace fedtiny::core
