#include "core/fedtiny.h"

#include <cassert>
#include <numeric>

#include "metrics/comms.h"
#include "prune/surgery.h"

namespace fedtiny::core {

FedTinyTrainer::FedTinyTrainer(nn::Model& model, const data::Dataset& train_data,
                               const data::Dataset& test_data,
                               std::vector<std::vector<int64_t>> partitions,
                               fl::FLConfig fl_config, FedTinyConfig config)
    : fl::FederatedTrainer(model, train_data, test_data, std::move(partitions), fl_config),
      ft_config_(config) {
  // Resolve granularity into a block partition over prunable layers.
  std::vector<int64_t> layer_sizes;
  for (int idx : model_.prunable_indices()) {
    layer_sizes.push_back(model_.params()[static_cast<size_t>(idx)]->value.numel());
  }
  int blocks = ft_config_.schedule.num_blocks;
  switch (ft_config_.schedule.granularity) {
    case Granularity::kLayer:
      blocks = static_cast<int>(layer_sizes.size());
      break;
    case Granularity::kEntire:
      blocks = 1;
      break;
    case Granularity::kBlock:
      break;
  }
  blocks_ = partition_blocks(layer_sizes, blocks);
  ft_config_.schedule.num_blocks = static_cast<int>(blocks_.size());
}

const BNSelectionReport& FedTinyTrainer::initialize() {
  assert(!initialized_);
  assert(train_data_ != nullptr);  // FedTiny is built on materialized data
  selection_report_ = select_coarse_mask(model_, *train_data_, partitions_, ft_config_.selection);
  capture_global_from_model();
  set_mask(selection_report_.mask);
  initialized_ = true;
  return selection_report_;
}

const std::vector<int>& FedTinyTrainer::block_for_round(int round) const {
  const int event = ft_config_.schedule.event_index(round);
  const int block = scheduled_block(event, static_cast<int>(blocks_.size()),
                                    ft_config_.schedule.backward_order);
  return blocks_[static_cast<size_t>(block)];
}

std::vector<int64_t> FedTinyTrainer::quotas_for_round(int round) {
  std::vector<int64_t> quota(model_.prunable_indices().size(), 0);
  const auto densities = mask_.layer_densities();
  int64_t total = 0;
  for (int pos : block_for_round(round)) {
    const auto n_unpruned = static_cast<int64_t>(
        densities[static_cast<size_t>(pos)] *
        static_cast<double>(mask_.layer(static_cast<size_t>(pos)).size()));
    quota[static_cast<size_t>(pos)] = ft_config_.schedule.quota(round, n_unpruned);
    total += quota[static_cast<size_t>(pos)];
  }
  max_topk_capacity_ = std::max(max_topk_capacity_, total);
  return quota;
}

std::vector<int64_t> FedTinyTrainer::pruned_grad_quota(int round) {
  assert(initialized_ && "call initialize() before run()");
  if (!ft_config_.progressive_pruning || !ft_config_.schedule.is_pruning_round(round)) return {};
  return quotas_for_round(round);
}

void FedTinyTrainer::after_aggregate(int round) {
  if (!ft_config_.progressive_pruning || !ft_config_.schedule.is_pruning_round(round)) return;
  if (aggregated_grads_.empty()) return;
  model_.set_state(global_);
  const auto quota = quotas_for_round(round);
  for (int pos : block_for_round(round)) {
    const auto p = static_cast<size_t>(pos);
    if (quota[p] <= 0) continue;
    const auto* param =
        model_.params()[static_cast<size_t>(model_.prunable_indices()[p])];
    prune::grow_prune_layer(param->value.flat(), mask_.layer(p), aggregated_grads_[p], quota[p]);
  }
  // Base class re-applies the (adjusted) mask to the global state.
}

double FedTinyTrainer::extra_device_flops(int round, const fl::RoundPlan& plan) {
  (void)plan;  // per-device: one extra batch, independent of cohort size
  if (!ft_config_.progressive_pruning || !ft_config_.schedule.is_pruning_round(round)) return 0.0;
  // One extra batch whose backward computes dense weight gradients for the
  // scheduled block's layers (everything else stays sparse).
  const auto densities = mask_.layer_densities();
  double dense_block_extra = 0.0;
  for (int pos : block_for_round(round)) {
    for (const auto& layer : cost_.weight_layers) {
      if (layer.prunable_pos == pos) {
        dense_block_extra += static_cast<double>(layer.flops_per_sample) *
                             (1.0 - densities[static_cast<size_t>(pos)]);
      }
    }
  }
  const double sparse = cost_.sparse_training_flops(densities);
  return static_cast<double>(config().batch_size) * (sparse + dense_block_extra);
}

double FedTinyTrainer::extra_comm_bytes(int round, const fl::RoundPlan& plan) {
  if (!ft_config_.progressive_pruning || !ft_config_.schedule.is_pruning_round(round)) return 0.0;
  const auto quota = quotas_for_round(round);
  const int64_t total = std::accumulate(quota.begin(), quota.end(), int64_t{0});
  // Gradient uploads come from the round's cohort, not the whole fleet.
  return static_cast<double>(plan.participants) * metrics::topk_gradient_bytes(total);
}

}  // namespace fedtiny::core
