#include "core/schedule.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fedtiny::core {

int64_t PruningSchedule::quota(int round, int64_t n_unpruned) const {
  if (r_stop <= 0 || round > r_stop || n_unpruned <= 0) return 0;
  const double phase = static_cast<double>(round) / static_cast<double>(r_stop);
  const double a = alpha * (1.0 + std::cos(phase * M_PI)) * static_cast<double>(n_unpruned);
  return static_cast<int64_t>(a);
}

std::vector<std::vector<int>> partition_blocks(const std::vector<int64_t>& layer_sizes,
                                               int num_blocks) {
  assert(num_blocks >= 1);
  const int n_layers = static_cast<int>(layer_sizes.size());
  const int blocks = std::min(num_blocks, std::max(1, n_layers));
  std::vector<std::vector<int>> out(static_cast<size_t>(blocks));
  if (n_layers == 0) return out;

  int64_t total = 0;
  for (int64_t s : layer_sizes) total += s;
  const double target = static_cast<double>(total) / static_cast<double>(blocks);

  int block = 0;
  double acc = 0.0;
  for (int l = 0; l < n_layers; ++l) {
    out[static_cast<size_t>(block)].push_back(l);
    acc += static_cast<double>(layer_sizes[static_cast<size_t>(l)]);
    if (block >= blocks - 1) continue;
    // Close the current block when it met its share (and enough layers
    // remain for the later blocks), or when the remaining layers are just
    // enough to give every later block one layer.
    const int layers_left = n_layers - l - 1;
    const int blocks_left = blocks - block - 1;
    if ((acc >= target && layers_left >= blocks_left) || layers_left <= blocks_left) {
      ++block;
      acc = 0.0;
    }
  }
  return out;
}

int scheduled_block(int event_index, int num_blocks, bool backward_order) {
  assert(num_blocks >= 1);
  const int cycle = event_index % num_blocks;
  return backward_order ? num_blocks - 1 - cycle : cycle;
}

}  // namespace fedtiny::core
