// Progressive pruning schedule (paper §III-D and §IV-A2):
//   - grow/prune quota a_l_t = alpha * (1 + cos(t*pi / (R_stop*E))) * n_l
//     with alpha = 0.15, n_l = currently-unpruned parameters of layer l
//   - pruning happens every delta_r rounds until r_stop, then pure fine-tuning
//   - granularity: one layer / one block (of 5) / the entire model per
//     pruning round, scheduled in backward (output-to-input) or forward order
#pragma once

#include <cstdint>
#include <vector>

namespace fedtiny::core {

enum class Granularity { kLayer, kBlock, kEntire };

struct PruningSchedule {
  Granularity granularity = Granularity::kBlock;
  bool backward_order = true;  // paper: backward wins (Table III)
  int delta_r = 10;            // rounds of fine-tuning between prunes
  int r_stop = 100;            // stop pruning after this round
  double alpha = 0.15;         // cosine amplitude
  int num_blocks = 5;          // Fig. 2: five blocks

  [[nodiscard]] bool is_pruning_round(int round) const {
    return delta_r > 0 && round % delta_r == 0 && round <= r_stop;
  }

  /// Index of this pruning event (0 for the first pruning round).
  [[nodiscard]] int event_index(int round) const { return delta_r > 0 ? round / delta_r : 0; }

  /// Grow/prune quota for a layer with n_unpruned kept parameters at the
  /// given round (cosine-annealed; Alg. 2 uses iteration t = round * E, and
  /// the E factors cancel in t / (R_stop * E)).
  [[nodiscard]] int64_t quota(int round, int64_t n_unpruned) const;
};

/// Partition the ordered list of prunable-layer sizes into `num_blocks`
/// contiguous groups with approximately balanced parameter counts. Returns,
/// for each block, the list of prunable-layer positions it contains. This is
/// the generic counterpart of the paper's Fig. 2 partition and degenerates
/// to per-layer blocks (kLayer) or one block (kEntire).
std::vector<std::vector<int>> partition_blocks(const std::vector<int64_t>& layer_sizes,
                                               int num_blocks);

/// The block scheduled for a given pruning event, honoring the order.
/// Backward order starts from the last (output-side) block and cycles.
int scheduled_block(int event_index, int num_blocks, bool backward_order);

}  // namespace fedtiny::core
