// Adaptive batch-normalization selection (Alg. 1) and its vanilla-selection
// ablation.
//
// The server coarse-prunes the pretrained dense model into a candidate pool
// (uniform-noise layer-wise densities + magnitude pruning). For each
// candidate, devices recalibrate BN statistics on a local development split
// (forward passes only — no gradients), the server aggregates the statistics
// weighted by dev-split size, devices install the aggregated statistics and
// report the evaluation loss, and the server keeps the arg-min candidate.
// Vanilla selection (He et al. AMC-style, §III-C) skips the recalibration.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "data/partition.h"
#include "nn/model.h"
#include "prune/candidates.h"
#include "prune/mask.h"

namespace fedtiny::core {

struct BNSelectionConfig {
  prune::CandidatePoolConfig pool;
  double dev_fraction = 0.1;  // paper: 0.1 of local data
  bool adaptive = true;       // false => vanilla selection (no BN refresh)
  int64_t batch_size = 32;
  uint64_t seed = 1;
};

struct BNSelectionReport {
  prune::MaskSet mask;
  int selected_candidate = -1;
  std::vector<double> candidate_losses;
  /// Costs of the selection phase (per §IV-D / Table II).
  double comm_bytes_per_device = 0.0;
  double extra_flops_per_device = 0.0;
};

/// Run candidate selection. `model` must hold the pretrained dense state;
/// it is restored to that state (with the winning mask applied and, for
/// adaptive mode, the winning aggregated BN statistics installed) on return.
/// Partitions come in compact arena form (nested index lists convert
/// implicitly).
BNSelectionReport select_coarse_mask(nn::Model& model, const data::Dataset& train_data,
                                     const data::PartitionArena& partitions,
                                     const BNSelectionConfig& config);

}  // namespace fedtiny::core
