#include "tensor/rng.h"

#include <cassert>

namespace fedtiny {

double Rng::gamma(double shape) {
  assert(shape > 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
    double u = uniform();
    if (u < 1e-12) u = 1e-12;
    return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = uniform();
    if (u < 1e-12) u = 1e-12;
    if (std::log(u) < 0.5 * x * x + d - d * v + d * std::log(v)) {
      return d * v;
    }
  }
}

std::vector<double> Rng::dirichlet(double alpha, int k) {
  assert(alpha > 0.0 && k > 0);
  std::vector<double> out(static_cast<size_t>(k));
  double total = 0.0;
  for (auto& v : out) {
    v = gamma(alpha);
    total += v;
  }
  if (total <= 0.0) {
    for (auto& v : out) v = 1.0 / k;
    return out;
  }
  for (auto& v : out) v /= total;
  return out;
}

}  // namespace fedtiny
