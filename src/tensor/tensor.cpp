#include "tensor/tensor.h"

#include <sstream>

namespace fedtiny {

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i != 0) os << ", ";
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace fedtiny
