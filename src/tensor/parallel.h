// Minimal data-parallel loop helper.
//
// Kernel-level parallelism is OFF by default: the reproduction's tensors are
// small (tiny-model regime), where per-call OpenMP region overhead dominates
// any speedup. The bench harness instead parallelizes across independent
// experiment runs (see harness::run_all). Set FEDTINY_THREADS=N or call
// set_parallelism(N) to opt into kernel threading for single large runs.
#pragma once

#include <cstdint>
#include <cstdlib>

namespace fedtiny {

namespace detail {
inline int& parallelism_slot() {
  static int value = [] {
    const char* env = std::getenv("FEDTINY_THREADS");
    const int n = env != nullptr ? std::atoi(env) : 1;
    return n >= 1 ? n : 1;
  }();
  return value;
}
}  // namespace detail

/// Number of threads parallel_for may use (>= 1).
inline int parallelism() { return detail::parallelism_slot(); }
inline void set_parallelism(int n) { detail::parallelism_slot() = n >= 1 ? n : 1; }

/// Invoke fn(i) for i in [0, n). Iterations must be independent.
template <typename Fn>
void parallel_for(int64_t n, Fn&& fn) {
#if defined(_OPENMP)
  const int threads = parallelism();
  if (threads > 1 && n >= 4) {
#pragma omp parallel for schedule(static) num_threads(threads)
    for (int64_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) {
    fn(i);
  }
}

}  // namespace fedtiny
