// Process-wide execution resources.
//
// Two levels of parallelism share one machine:
//   - coarse-grained pools (independent experiment runs in harness::run_all,
//     sampled clients in the federated round loop) go through the Executor,
//     which holds the single global thread budget — nested regions
//     (runs x clients) acquire lanes from the same budget and degrade to
//     inline execution instead of oversubscribing;
//   - kernel-level parallelism (parallel_for) is OFF by default: the
//     reproduction's tensors are small (tiny-model regime), where per-call
//     OpenMP region overhead dominates any speedup. Set FEDTINY_THREADS=N or
//     call set_parallelism(N) to opt into kernel threading for single large
//     runs.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace fedtiny {

namespace detail {
inline int& parallelism_slot() {
  static int value = [] {
    const char* env = std::getenv("FEDTINY_THREADS");
    const int n = env != nullptr ? std::atoi(env) : 1;
    return n >= 1 ? n : 1;
  }();
  return value;
}
}  // namespace detail

/// Number of threads parallel_for may use (>= 1).
inline int parallelism() { return detail::parallelism_slot(); }
inline void set_parallelism(int n) { detail::parallelism_slot() = n >= 1 ? n : 1; }

/// Default worker-lane count for coarse-grained pools (experiment runs,
/// client training): hardware threads minus two, at least one.
inline int default_pool_workers() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 2 ? static_cast<int>(hc - 2) : 1;
}

/// The process-wide coarse-grained executor. It does not own threads; it
/// owns the *budget*: the maximum number of extra worker threads that may be
/// alive at once across every LaneSet in the process. A parallel region asks
/// for lanes and receives the caller's thread plus however many extra
/// threads the remaining budget allows — a region nested inside an already
/// saturated pool simply runs inline. Results never depend on how many
/// lanes were granted (work items must be independent and reductions
/// ordered), so the budget is purely a throughput knob.
class Executor {
 public:
  static Executor& instance() {
    static Executor executor;
    return executor;
  }

  /// Maximum extra worker threads alive at once (the caller's thread rides
  /// for free). Defaults to default_pool_workers(); FEDTINY_THREAD_BUDGET
  /// overrides.
  [[nodiscard]] int thread_budget() const { return budget_.load(std::memory_order_relaxed); }
  void set_thread_budget(int n) { budget_.store(n >= 0 ? n : 0, std::memory_order_relaxed); }
  [[nodiscard]] int threads_in_use() const { return in_use_.load(std::memory_order_relaxed); }

  /// Take up to `want` extra threads from the budget; returns the number
  /// actually granted (possibly 0). Pair with release().
  int acquire(int want) {
    if (want <= 0) return 0;
    int current = in_use_.load(std::memory_order_relaxed);
    while (true) {
      const int available = thread_budget() - current;
      const int take = available < want ? (available > 0 ? available : 0) : want;
      if (take == 0) return 0;
      if (in_use_.compare_exchange_weak(current, current + take, std::memory_order_relaxed)) {
        return take;
      }
    }
  }

  void release(int count) {
    if (count > 0) in_use_.fetch_sub(count, std::memory_order_relaxed);
  }

 private:
  Executor() {
    const char* env = std::getenv("FEDTINY_THREAD_BUDGET");
    const int n = env != nullptr ? std::atoi(env) : default_pool_workers();
    budget_.store(n >= 0 ? n : 0, std::memory_order_relaxed);
  }

  std::atomic<int> budget_{0};
  std::atomic<int> in_use_{0};
};

/// RAII share of the executor's budget. Construction acquires up to
/// `max_lanes - 1` extra threads (the caller is always lane 0); destruction
/// returns them. lanes() is known before any work runs, so callers can size
/// per-lane state (e.g. model replicas) to what was actually granted.
class LaneSet {
 public:
  explicit LaneSet(int max_lanes) : extra_(Executor::instance().acquire(max_lanes - 1)) {}
  ~LaneSet() { Executor::instance().release(extra_); }
  LaneSet(const LaneSet&) = delete;
  LaneSet& operator=(const LaneSet&) = delete;

  /// Total lanes including the caller (>= 1).
  [[nodiscard]] int lanes() const { return extra_ + 1; }

  /// Invoke fn(lane, index) for index in [0, n), work-stealing across the
  /// granted lanes (atomic next-index counter); the caller drains as lane 0.
  /// Items must be independent; per-lane state is keyed by the lane argument.
  template <typename Fn>
  void for_each(size_t n, Fn&& fn) {
    if (extra_ == 0 || n <= 1) {
      for (size_t i = 0; i < n; ++i) fn(0, i);
      return;
    }
    std::atomic<size_t> next{0};
    auto drain = [&](int lane) {
      while (true) {
        const size_t i = next.fetch_add(1);
        if (i >= n) return;
        fn(lane, i);
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(extra_));
    for (int w = 1; w <= extra_; ++w) threads.emplace_back(drain, w);
    drain(0);
    for (auto& t : threads) t.join();
  }

 private:
  int extra_;
};

/// Convenience wrapper: fn(lane, index) for index in [0, n) on up to
/// `workers` lanes drawn from the executor budget. workers <= 1 runs inline
/// as lane 0.
template <typename Fn>
void worker_pool_for(size_t n, int workers, Fn&& fn) {
  if (workers <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  LaneSet lanes(workers);
  lanes.for_each(n, fn);
}

// ---- Grain-aligned band splitting ------------------------------------------
// The old band split rounded n/threads up, which left the last lane a short
// or empty band on non-divisible sizes (8 items on 3 lanes: 3+3+2 is fine,
// but ceil(n/threads) gave 3+3+2 only by luck — 9 on 4 lanes gave 3+3+3+0).
// These helpers distribute ceil(n/grain) grain-sized units as evenly as
// possible: unit counts per band differ by at most one and no band is empty,
// so every lane gets work whenever there is enough to go around. Band
// boundaries always fall on grain multiples (the last band absorbs the
// sub-grain tail), which the kernels rely on: a grain of kMr keeps GEMM row
// bands identical to the serial band walk for any band count.

struct Band {
  int64_t begin;
  int64_t end;
};

/// Number of grain-aligned bands [0, n) actually splits into when up to
/// `want` are requested: min(want, ceil(n/grain)), at least 1 for n > 0.
inline int64_t band_count(int64_t n, int64_t grain, int64_t want) {
  if (n <= 0) return 0;
  if (grain < 1) grain = 1;
  if (want < 1) want = 1;
  const int64_t units = (n + grain - 1) / grain;
  return want < units ? want : units;
}

/// The b-th of `bands` grain-aligned bands over [0, n) (`bands` must come
/// from band_count for the same n/grain). Bands partition [0, n); sizes
/// differ by at most one grain unit; none is empty.
inline Band band_range(int64_t n, int64_t grain, int64_t bands, int64_t b) {
  if (grain < 1) grain = 1;
  const int64_t units = (n + grain - 1) / grain;
  const int64_t q = units / bands;
  const int64_t r = units % bands;
  const int64_t u0 = b * q + (b < r ? b : r);
  const int64_t u1 = u0 + q + (b < r ? 1 : 0);
  const int64_t hi = u1 * grain;
  return {u0 * grain, hi < n ? hi : n};
}

// ---- Kernel lane pool ------------------------------------------------------

/// Persistent worker pool for kernel-level lanes (the panel-parallel GEMM
/// and the threaded conv data movers). LaneSet spawns a std::thread per
/// region — fine for client-sized coarse work, but a GEMM panel region lasts
/// tens of microseconds, where spawn/join overhead eats the win. The pool
/// parks its workers on a condition variable between jobs, so dispatch is
/// one lock + notify.
///
/// Contract: chunks must be independent; every chunk runs exactly once (on
/// the caller or a worker, work-stealing order) and run() returns only after
/// all chunks completed, with worker writes visible to the caller (the
/// completion handshake goes through the pool mutex). One job at a time: a
/// run() issued while another thread's job is in flight executes inline
/// instead of queueing — kernel results never depend on being granted lanes,
/// mirroring the Executor's nested-region rule.
class KernelPool {
 public:
  static KernelPool& instance() {
    static KernelPool pool;
    return pool;
  }

  using ChunkFn = void (*)(void*, int64_t);

  /// Execute fn(ctx, chunk) for chunk in [0, chunks), the caller draining
  /// alongside up to `extra` pool workers. extra <= 0 runs inline.
  void run(int64_t chunks, int extra, ChunkFn fn, void* ctx) {
    if (chunks <= 0) return;
    if (extra <= 0 || chunks < 2) {
      for (int64_t c = 0; c < chunks; ++c) fn(ctx, c);
      return;
    }
    std::unique_lock<std::mutex> busy(run_mu_, std::try_to_lock);
    if (!busy.owns_lock()) {
      for (int64_t c = 0; c < chunks; ++c) fn(ctx, c);
      return;
    }
    ensure_workers(extra);
    Job job{fn, ctx, chunks, {0}};
    {
      std::lock_guard<std::mutex> lk(mu_);
      job_ = &job;
      slots_ = extra;
      ++seq_;
    }
    cv_.notify_all();
    drain(job);
    std::unique_lock<std::mutex> lk(mu_);
    slots_ = 0;  // the job is drained; a worker that wakes late must not join
    done_cv_.wait(lk, [&] { return active_ == 0; });
    job_ = nullptr;
  }

  KernelPool(const KernelPool&) = delete;
  KernelPool& operator=(const KernelPool&) = delete;

 private:
  struct Job {
    ChunkFn fn;
    void* ctx;
    int64_t chunks;
    std::atomic<int64_t> next;
  };

  KernelPool() = default;
  ~KernelPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  static void drain(Job& job) {
    while (true) {
      const int64_t c = job.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= job.chunks) return;
      job.fn(job.ctx, c);
    }
  }

  void ensure_workers(int want) {
    constexpr int kMaxWorkers = 64;  // backstop; the Executor budget is the real cap
    if (want > kMaxWorkers) want = kMaxWorkers;
    std::lock_guard<std::mutex> lk(mu_);
    while (static_cast<int>(workers_.size()) < want) {
      workers_.emplace_back([this] { worker_main(); });
    }
  }

  void worker_main() {
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu_);
    while (true) {
      cv_.wait(lk, [&] { return stop_ || seq_ != seen; });
      if (stop_) return;
      seen = seq_;
      if (slots_ == 0 || job_ == nullptr) continue;  // job full or already done
      --slots_;
      Job* job = job_;
      ++active_;
      lk.unlock();
      drain(*job);
      lk.lock();
      if (--active_ == 0) done_cv_.notify_all();
    }
  }

  std::mutex run_mu_;  // serializes dispatchers; busy => inline fallback
  std::mutex mu_;
  std::condition_variable cv_;       // workers park here between jobs
  std::condition_variable done_cv_;  // the caller waits out joined workers
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;
  int slots_ = 0;   // workers still allowed to join the current job
  int active_ = 0;  // workers currently inside the current job
  uint64_t seq_ = 0;
  bool stop_ = false;
};

/// RAII extra-lane grant for one fast-kernel call: up to `want` extra lanes
/// from the Executor budget, returned on destruction. Kernels issued from an
/// already saturated pool (nested in client training lanes) get 0 and run
/// inline — the budget never oversubscribes.
class KernelLanes {
 public:
  explicit KernelLanes(int want) : extra_(want > 0 ? Executor::instance().acquire(want) : 0) {}
  ~KernelLanes() { Executor::instance().release(extra_); }
  KernelLanes(const KernelLanes&) = delete;
  KernelLanes& operator=(const KernelLanes&) = delete;

  [[nodiscard]] int extra() const { return extra_; }

 private:
  int extra_;
};

/// Run fn(begin, end) over grain-aligned bands of [0, n) on the caller plus
/// up to `extra` kernel-pool workers. Bands are oversplit ~4x the lane count
/// so work-stealing balances uneven bands; boundaries always fall on grain
/// multiples, so a grain-blocked kernel computes identical per-block results
/// for any lane count (the bitwise-determinism contract).
template <typename Fn>
void pool_for_bands(int64_t n, int64_t grain, int extra, Fn&& fn) {
  if (n <= 0) return;
  const int64_t bands = band_count(n, grain, (static_cast<int64_t>(extra) + 1) * 4);
  if (extra <= 0 || bands <= 1) {
    fn(static_cast<int64_t>(0), n);
    return;
  }
  struct Ctx {
    std::remove_reference_t<Fn>* fn;
    int64_t n, grain, bands;
  } ctx{&fn, n, grain, bands};
  KernelPool::instance().run(
      bands, extra,
      [](void* c, int64_t b) {
        auto* x = static_cast<Ctx*>(c);
        const Band r = band_range(x->n, x->grain, x->bands, b);
        (*x->fn)(r.begin, r.end);
      },
      &ctx);
}

/// Invoke fn(i) for i in [0, n). Iterations must be independent.
template <typename Fn>
void parallel_for(int64_t n, Fn&& fn) {
#if defined(_OPENMP)
  const int threads = parallelism();
  if (threads > 1 && n >= 4) {
#pragma omp parallel for schedule(static) num_threads(threads)
    for (int64_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) {
    fn(i);
  }
}

}  // namespace fedtiny
