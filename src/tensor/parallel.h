// Minimal data-parallel loop helper.
//
// Kernel-level parallelism is OFF by default: the reproduction's tensors are
// small (tiny-model regime), where per-call OpenMP region overhead dominates
// any speedup. The bench harness instead parallelizes across independent
// experiment runs (see harness::run_all). Set FEDTINY_THREADS=N or call
// set_parallelism(N) to opt into kernel threading for single large runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

namespace fedtiny {

namespace detail {
inline int& parallelism_slot() {
  static int value = [] {
    const char* env = std::getenv("FEDTINY_THREADS");
    const int n = env != nullptr ? std::atoi(env) : 1;
    return n >= 1 ? n : 1;
  }();
  return value;
}
}  // namespace detail

/// Number of threads parallel_for may use (>= 1).
inline int parallelism() { return detail::parallelism_slot(); }
inline void set_parallelism(int n) { detail::parallelism_slot() = n >= 1 ? n : 1; }

/// Default worker count for coarse-grained pools (experiment runs, client
/// training): hardware threads minus two, at least one.
inline int default_pool_workers() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 2 ? static_cast<int>(hc - 2) : 1;
}

/// Coarse-grained work-stealing pool: invoke fn(worker, index) for index in
/// [0, n) across `workers` threads (atomic next-index counter). workers <= 1
/// runs inline as worker 0. Items must be independent; per-worker state
/// (e.g. a model replica) is keyed by the worker argument. Shared by
/// harness::run_all and the federated client round loop.
template <typename Fn>
void worker_pool_for(size_t n, int workers, Fn&& fn) {
  if (workers <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  std::atomic<size_t> next{0};
  auto drain = [&](int worker) {
    while (true) {
      const size_t i = next.fetch_add(1);
      if (i >= n) return;
      fn(worker, i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) threads.emplace_back(drain, w);
  for (auto& t : threads) t.join();
}

/// Invoke fn(i) for i in [0, n). Iterations must be independent.
template <typename Fn>
void parallel_for(int64_t n, Fn&& fn) {
#if defined(_OPENMP)
  const int threads = parallelism();
  if (threads > 1 && n >= 4) {
#pragma omp parallel for schedule(static) num_threads(threads)
    for (int64_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) {
    fn(i);
  }
}

}  // namespace fedtiny
