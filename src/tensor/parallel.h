// Process-wide execution resources.
//
// Two levels of parallelism share one machine:
//   - coarse-grained pools (independent experiment runs in harness::run_all,
//     sampled clients in the federated round loop) go through the Executor,
//     which holds the single global thread budget — nested regions
//     (runs x clients) acquire lanes from the same budget and degrade to
//     inline execution instead of oversubscribing;
//   - kernel-level parallelism (parallel_for) is OFF by default: the
//     reproduction's tensors are small (tiny-model regime), where per-call
//     OpenMP region overhead dominates any speedup. Set FEDTINY_THREADS=N or
//     call set_parallelism(N) to opt into kernel threading for single large
//     runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

namespace fedtiny {

namespace detail {
inline int& parallelism_slot() {
  static int value = [] {
    const char* env = std::getenv("FEDTINY_THREADS");
    const int n = env != nullptr ? std::atoi(env) : 1;
    return n >= 1 ? n : 1;
  }();
  return value;
}
}  // namespace detail

/// Number of threads parallel_for may use (>= 1).
inline int parallelism() { return detail::parallelism_slot(); }
inline void set_parallelism(int n) { detail::parallelism_slot() = n >= 1 ? n : 1; }

/// Default worker-lane count for coarse-grained pools (experiment runs,
/// client training): hardware threads minus two, at least one.
inline int default_pool_workers() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 2 ? static_cast<int>(hc - 2) : 1;
}

/// The process-wide coarse-grained executor. It does not own threads; it
/// owns the *budget*: the maximum number of extra worker threads that may be
/// alive at once across every LaneSet in the process. A parallel region asks
/// for lanes and receives the caller's thread plus however many extra
/// threads the remaining budget allows — a region nested inside an already
/// saturated pool simply runs inline. Results never depend on how many
/// lanes were granted (work items must be independent and reductions
/// ordered), so the budget is purely a throughput knob.
class Executor {
 public:
  static Executor& instance() {
    static Executor executor;
    return executor;
  }

  /// Maximum extra worker threads alive at once (the caller's thread rides
  /// for free). Defaults to default_pool_workers(); FEDTINY_THREAD_BUDGET
  /// overrides.
  [[nodiscard]] int thread_budget() const { return budget_.load(std::memory_order_relaxed); }
  void set_thread_budget(int n) { budget_.store(n >= 0 ? n : 0, std::memory_order_relaxed); }
  [[nodiscard]] int threads_in_use() const { return in_use_.load(std::memory_order_relaxed); }

  /// Take up to `want` extra threads from the budget; returns the number
  /// actually granted (possibly 0). Pair with release().
  int acquire(int want) {
    if (want <= 0) return 0;
    int current = in_use_.load(std::memory_order_relaxed);
    while (true) {
      const int available = thread_budget() - current;
      const int take = available < want ? (available > 0 ? available : 0) : want;
      if (take == 0) return 0;
      if (in_use_.compare_exchange_weak(current, current + take, std::memory_order_relaxed)) {
        return take;
      }
    }
  }

  void release(int count) {
    if (count > 0) in_use_.fetch_sub(count, std::memory_order_relaxed);
  }

 private:
  Executor() {
    const char* env = std::getenv("FEDTINY_THREAD_BUDGET");
    const int n = env != nullptr ? std::atoi(env) : default_pool_workers();
    budget_.store(n >= 0 ? n : 0, std::memory_order_relaxed);
  }

  std::atomic<int> budget_{0};
  std::atomic<int> in_use_{0};
};

/// RAII share of the executor's budget. Construction acquires up to
/// `max_lanes - 1` extra threads (the caller is always lane 0); destruction
/// returns them. lanes() is known before any work runs, so callers can size
/// per-lane state (e.g. model replicas) to what was actually granted.
class LaneSet {
 public:
  explicit LaneSet(int max_lanes) : extra_(Executor::instance().acquire(max_lanes - 1)) {}
  ~LaneSet() { Executor::instance().release(extra_); }
  LaneSet(const LaneSet&) = delete;
  LaneSet& operator=(const LaneSet&) = delete;

  /// Total lanes including the caller (>= 1).
  [[nodiscard]] int lanes() const { return extra_ + 1; }

  /// Invoke fn(lane, index) for index in [0, n), work-stealing across the
  /// granted lanes (atomic next-index counter); the caller drains as lane 0.
  /// Items must be independent; per-lane state is keyed by the lane argument.
  template <typename Fn>
  void for_each(size_t n, Fn&& fn) {
    if (extra_ == 0 || n <= 1) {
      for (size_t i = 0; i < n; ++i) fn(0, i);
      return;
    }
    std::atomic<size_t> next{0};
    auto drain = [&](int lane) {
      while (true) {
        const size_t i = next.fetch_add(1);
        if (i >= n) return;
        fn(lane, i);
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(extra_));
    for (int w = 1; w <= extra_; ++w) threads.emplace_back(drain, w);
    drain(0);
    for (auto& t : threads) t.join();
  }

 private:
  int extra_;
};

/// Convenience wrapper: fn(lane, index) for index in [0, n) on up to
/// `workers` lanes drawn from the executor budget. workers <= 1 runs inline
/// as lane 0.
template <typename Fn>
void worker_pool_for(size_t n, int workers, Fn&& fn) {
  if (workers <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  LaneSet lanes(workers);
  lanes.for_each(n, fn);
}

/// Invoke fn(i) for i in [0, n). Iterations must be independent.
template <typename Fn>
void parallel_for(int64_t n, Fn&& fn) {
#if defined(_OPENMP)
  const int threads = parallelism();
  if (threads > 1 && n >= 4) {
#pragma omp parallel for schedule(static) num_threads(threads)
    for (int64_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
#endif
  for (int64_t i = 0; i < n; ++i) {
    fn(i);
  }
}

}  // namespace fedtiny
