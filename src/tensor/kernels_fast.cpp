// Fast kernel implementations: register-blocked / multi-accumulator rewrites
// of the reference loops. Scalar float math only — no intrinsics, no
// fast-math — so they compile anywhere; the speed comes from three sources:
//
//   * fixed-size interleaved accumulator tiles the compiler keeps in SIMD
//     registers (C traffic drops from one load+store per (p, j) visit to one
//     store per output element),
//   * independent accumulator chains that break the FP add latency the
//     reference dot products serialize on,
//   * function multiversioning (target_clones, where the toolchain supports
//     it): each hot helper is compiled for avx512f/avx2/baseline and the
//     dynamic linker picks the widest clone the CPU offers, without giving
//     up the portable baseline binary.
//
// Determinism contract: every blocking factor is a compile-time constant and
// every output element is produced by exactly one parallel_for iteration, so
// results are bitwise-identical across runs, FEDTINY_THREADS values, and
// worker counts on a given machine. They are NOT bitwise-equal to reference
// (reassociated sums and FMA contraction round differently), and the
// selected clone can differ across CPU generations; the parity tests bound
// the drift against reference instead of pinning bits.
//
// Layout note: the per-row/per-tile loop bodies live in flat file-local
// helpers rather than inside the parallel_for lambdas — target_clones
// applies to the function it annotates, and a lambda body is a different
// function that would silently stay on the baseline ISA.
#include <algorithm>
#include <cstring>

#include "tensor/kernels.h"
#include "tensor/parallel.h"
#include "tensor/sparse.h"

// Multiversion hot helpers on ELF x86-64 where the compiler understands
// target_clones (GCC and recent Clang); elsewhere compile the portable
// baseline only.
#if defined(__x86_64__) && defined(__ELF__) && defined(__has_attribute)
#if __has_attribute(target_clones)
#define FEDTINY_KERNEL_CLONES __attribute__((target_clones("avx512f", "avx2", "default")))
#endif
#endif
#ifndef FEDTINY_KERNEL_CLONES
#define FEDTINY_KERNEL_CLONES
#endif

namespace fedtiny::kernels {

namespace {

// GEMM register tile: kMr C-rows x kNr C-columns accumulate in registers
// across the whole k loop. kNr = 16 floats is one full zmm (or two ymm /
// four xmm) per row; kMr = 4 rows keeps the tile within the 16-register
// budget of every x86-64 level.
constexpr int64_t kMr = 4;
constexpr int64_t kNr = 16;

/// Fixed-order pairwise reduction of kNr partial sums (the order is part of
/// the deterministic-results contract).
inline float reduce_tile(const float* s) {
  float d0 = 0.0f, d1 = 0.0f, d2 = 0.0f, d3 = 0.0f;
  for (int64_t u = 0; u < kNr; u += 4) {
    d0 += s[u];
    d1 += s[u + 1];
    d2 += s[u + 2];
    d3 += s[u + 3];
  }
  return (d0 + d1) + (d2 + d3);
}

/// Write-back for one tile row: c = alpha * acc + beta * c (beta == 0
/// overwrites, so C may start uninitialized).
inline void store_row(float* crow, const float* acc, int64_t nr, float alpha, float beta) {
  if (beta == 0.0f) {
    for (int64_t jj = 0; jj < nr; ++jj) crow[jj] = alpha * acc[jj];
  } else {
    for (int64_t jj = 0; jj < nr; ++jj) crow[jj] = alpha * acc[jj] + beta * crow[jj];
  }
}

// ---- gemm, op(B) = B (NN / TN): one kMr-row band of C -----------------------
// Interleaved accumulators: the jj loop reads each B chunk once and feeds
// all four C rows, so the compiler vectorizes jj and keeps acc0..acc3 in
// registers. trans_a only changes the (loop-invariant) A element address and
// stays outside the vector loop.

FEDTINY_KERNEL_CLONES
void gemm_bn_band(bool trans_a, int64_t i0, int64_t m, int64_t n, int64_t k, float alpha,
                  const float* a, const float* b, float beta, float* c) {
  const int64_t mr = std::min<int64_t>(kMr, m - i0);
  // Zero-heavy bands (masked dense weights with no CSR installed) take the
  // reference-style skip loop instead of the full-work tile: the tile is
  // ~4x faster on dense data, so the crossover sits around 25% density.
  // The O(mr*k) scan is 1/n of the band's work, and the choice depends only
  // on the data, so results stay deterministic across runs and threads.
  if (n >= kNr && k >= 8) {
    int64_t zeros = 0;
    for (int64_t r = 0; r < mr; ++r) {
      for (int64_t p = 0; p < k; ++p) {
        zeros += (trans_a ? a[p * m + i0 + r] : a[(i0 + r) * k + p]) == 0.0f ? 1 : 0;
      }
    }
    if (zeros * 4 > mr * k * 3) {  // > 75% zeros
      for (int64_t r = 0; r < mr; ++r) {
        const int64_t i = i0 + r;
        float* crow = c + i * n;
        if (beta == 0.0f) {
          std::memset(crow, 0, static_cast<size_t>(n) * sizeof(float));
        } else if (beta != 1.0f) {
          for (int64_t j = 0; j < n; ++j) crow[j] *= beta;
        }
        for (int64_t p = 0; p < k; ++p) {
          const float av = trans_a ? a[p * m + i] : a[i * k + p];
          if (av == 0.0f) continue;
          const float s = alpha * av;
          const float* brow = b + p * n;
          for (int64_t j = 0; j < n; ++j) crow[j] += s * brow[j];
        }
      }
      return;
    }
  }
  int64_t j0 = 0;
  if (mr == kMr) {
    for (; j0 + kNr <= n; j0 += kNr) {
      float acc0[kNr] = {}, acc1[kNr] = {}, acc2[kNr] = {}, acc3[kNr] = {};
      for (int64_t p = 0; p < k; ++p) {
        const float* brow = b + p * n + j0;
        const float a0 = trans_a ? a[p * m + i0 + 0] : a[(i0 + 0) * k + p];
        const float a1 = trans_a ? a[p * m + i0 + 1] : a[(i0 + 1) * k + p];
        const float a2 = trans_a ? a[p * m + i0 + 2] : a[(i0 + 2) * k + p];
        const float a3 = trans_a ? a[p * m + i0 + 3] : a[(i0 + 3) * k + p];
        for (int64_t jj = 0; jj < kNr; ++jj) {
          const float bv = brow[jj];
          acc0[jj] += a0 * bv;
          acc1[jj] += a1 * bv;
          acc2[jj] += a2 * bv;
          acc3[jj] += a3 * bv;
        }
      }
      store_row(c + (i0 + 0) * n + j0, acc0, kNr, alpha, beta);
      store_row(c + (i0 + 1) * n + j0, acc1, kNr, alpha, beta);
      store_row(c + (i0 + 2) * n + j0, acc2, kNr, alpha, beta);
      store_row(c + (i0 + 3) * n + j0, acc3, kNr, alpha, beta);
    }
  }
  // Row remainder (mr < kMr) and column tail (n % kNr): one row at a time,
  // same accumulation order with runtime bounds.
  const int64_t j_tail = j0;
  for (int64_t r = 0; r < mr; ++r) {
    const int64_t i = i0 + r;
    for (j0 = (mr == kMr) ? j_tail : 0; j0 < n; j0 += kNr) {
      const int64_t nr = std::min<int64_t>(kNr, n - j0);
      float acc[kNr] = {};
      for (int64_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * m + i] : a[i * k + p];
        const float* brow = b + p * n + j0;
        for (int64_t jj = 0; jj < nr; ++jj) acc[jj] += av * brow[jj];
      }
      store_row(c + i * n + j0, acc, nr, alpha, beta);
    }
  }
}

// ---- gemm NT (A row and B row both contiguous): one C row -------------------
// Four dots at a time, kNr independent partial sums each: each A chunk is
// loaded once and fed to all four B rows.

FEDTINY_KERNEL_CLONES
void gemm_nt_row(int64_t i, int64_t n, int64_t k, float alpha, const float* a, const float* b,
                 float beta, float* c) {
  constexpr int64_t kJb = 4;
  const float* arow = a + i * k;
  float* crow = c + i * n;
  int64_t j0 = 0;
  for (; j0 + kJb <= n; j0 += kJb) {
    const float* b0 = b + (j0 + 0) * k;
    const float* b1 = b + (j0 + 1) * k;
    const float* b2 = b + (j0 + 2) * k;
    const float* b3 = b + (j0 + 3) * k;
    float s0[kNr] = {}, s1[kNr] = {}, s2[kNr] = {}, s3[kNr] = {};
    int64_t p = 0;
    for (; p + kNr <= k; p += kNr) {
      for (int64_t u = 0; u < kNr; ++u) {
        const float av = arow[p + u];
        s0[u] += av * b0[p + u];
        s1[u] += av * b1[p + u];
        s2[u] += av * b2[p + u];
        s3[u] += av * b3[p + u];
      }
    }
    for (; p < k; ++p) {
      const float av = arow[p];
      s0[0] += av * b0[p];
      s1[0] += av * b1[p];
      s2[0] += av * b2[p];
      s3[0] += av * b3[p];
    }
    const float* ss[kJb] = {s0, s1, s2, s3};
    for (int64_t jj = 0; jj < kJb; ++jj) {
      const float dot = alpha * reduce_tile(ss[jj]);
      crow[j0 + jj] = beta == 0.0f ? dot : dot + beta * crow[j0 + jj];
    }
  }
  for (; j0 < n; ++j0) {
    const float* brow = b + j0 * k;
    float s[kNr] = {};
    int64_t p = 0;
    for (; p + kNr <= k; p += kNr) {
      for (int64_t u = 0; u < kNr; ++u) s[u] += arow[p + u] * brow[p + u];
    }
    for (; p < k; ++p) s[0] += arow[p] * brow[p];
    const float dot = alpha * reduce_tile(s);
    crow[j0] = beta == 0.0f ? dot : dot + beta * crow[j0];
  }
}

// ---- CSR row helpers --------------------------------------------------------

FEDTINY_KERNEL_CLONES
void spmm_row(const sparse::CsrMatrix& a, const float* b, int64_t n, float* crow, int64_t i,
              bool accumulate) {
  // Four CSR entries per pass: one read-modify-write of the C row amortizes
  // over four B rows instead of one.
  if (!accumulate) std::memset(crow, 0, static_cast<size_t>(n) * sizeof(float));
  const int64_t end = a.row_ptr[static_cast<size_t>(i) + 1];
  int64_t p = a.row_ptr[static_cast<size_t>(i)];
  for (; p + 4 <= end; p += 4) {
    const float v0 = a.values[static_cast<size_t>(p)];
    const float v1 = a.values[static_cast<size_t>(p) + 1];
    const float v2 = a.values[static_cast<size_t>(p) + 2];
    const float v3 = a.values[static_cast<size_t>(p) + 3];
    const float* b0 = b + static_cast<int64_t>(a.col_idx[static_cast<size_t>(p)]) * n;
    const float* b1 = b + static_cast<int64_t>(a.col_idx[static_cast<size_t>(p) + 1]) * n;
    const float* b2 = b + static_cast<int64_t>(a.col_idx[static_cast<size_t>(p) + 2]) * n;
    const float* b3 = b + static_cast<int64_t>(a.col_idx[static_cast<size_t>(p) + 3]) * n;
    for (int64_t j = 0; j < n; ++j) {
      crow[j] += (v0 * b0[j] + v1 * b1[j]) + (v2 * b2[j] + v3 * b3[j]);
    }
  }
  for (; p < end; ++p) {
    const float v = a.values[static_cast<size_t>(p)];
    const float* brow = b + static_cast<int64_t>(a.col_idx[static_cast<size_t>(p)]) * n;
    for (int64_t j = 0; j < n; ++j) crow[j] += v * brow[j];
  }
}

// The nt/dn/grad_tn kernels below index B through col_idx (gathers) or
// scatter into C; on those access patterns the wide clones lose (GCC emits
// hardware gather/scatter instructions that run slower than the scalar
// loads), so they stay un-annotated and win through batch blocking instead:
// four batch rows share one walk of the CSR structure, amortizing the
// value/col_idx loads and running four independent accumulator chains.

void spmm_nt_block(const sparse::CsrMatrix& a, const float* b, int64_t i0, int64_t n_rows,
                   float* c) {
  if (i0 + 4 <= n_rows) {
    const float* b0 = b + (i0 + 0) * a.cols;
    const float* b1 = b + (i0 + 1) * a.cols;
    const float* b2 = b + (i0 + 2) * a.cols;
    const float* b3 = b + (i0 + 3) * a.cols;
    float* c0 = c + (i0 + 0) * a.rows;
    float* c1 = c + (i0 + 1) * a.rows;
    float* c2 = c + (i0 + 2) * a.rows;
    float* c3 = c + (i0 + 3) * a.rows;
    for (int64_t j = 0; j < a.rows; ++j) {
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      for (int64_t p = a.row_ptr[static_cast<size_t>(j)];
           p < a.row_ptr[static_cast<size_t>(j) + 1]; ++p) {
        const float v = a.values[static_cast<size_t>(p)];
        const int64_t col = a.col_idx[static_cast<size_t>(p)];
        s0 += v * b0[col];
        s1 += v * b1[col];
        s2 += v * b2[col];
        s3 += v * b3[col];
      }
      c0[j] = s0;
      c1[j] = s1;
      c2[j] = s2;
      c3[j] = s3;
    }
    return;
  }
  for (int64_t i = i0; i < n_rows; ++i) {
    const float* brow = b + i * a.cols;
    float* crow = c + i * a.rows;
    for (int64_t j = 0; j < a.rows; ++j) {
      float s = 0.0f;
      for (int64_t p = a.row_ptr[static_cast<size_t>(j)];
           p < a.row_ptr[static_cast<size_t>(j) + 1]; ++p) {
        s += a.values[static_cast<size_t>(p)] * brow[a.col_idx[static_cast<size_t>(p)]];
      }
      crow[j] = s;
    }
  }
}

void spmm_dn_block(const sparse::CsrMatrix& a, const float* b, int64_t i0, int64_t n_rows,
                   float* c) {
  if (i0 + 4 <= n_rows) {
    const float* b0 = b + (i0 + 0) * a.rows;
    const float* b1 = b + (i0 + 1) * a.rows;
    const float* b2 = b + (i0 + 2) * a.rows;
    const float* b3 = b + (i0 + 3) * a.rows;
    float* c0 = c + (i0 + 0) * a.cols;
    float* c1 = c + (i0 + 1) * a.cols;
    float* c2 = c + (i0 + 2) * a.cols;
    float* c3 = c + (i0 + 3) * a.cols;
    const size_t row_bytes = static_cast<size_t>(a.cols) * sizeof(float);
    std::memset(c0, 0, row_bytes);
    std::memset(c1, 0, row_bytes);
    std::memset(c2, 0, row_bytes);
    std::memset(c3, 0, row_bytes);
    for (int64_t j = 0; j < a.rows; ++j) {
      const float v0 = b0[j], v1 = b1[j], v2 = b2[j], v3 = b3[j];
      if (v0 == 0.0f && v1 == 0.0f && v2 == 0.0f && v3 == 0.0f) continue;
      for (int64_t p = a.row_ptr[static_cast<size_t>(j)];
           p < a.row_ptr[static_cast<size_t>(j) + 1]; ++p) {
        const float v = a.values[static_cast<size_t>(p)];
        const int64_t col = a.col_idx[static_cast<size_t>(p)];
        c0[col] += v0 * v;
        c1[col] += v1 * v;
        c2[col] += v2 * v;
        c3[col] += v3 * v;
      }
    }
    return;
  }
  for (int64_t i = i0; i < n_rows; ++i) {
    const float* brow = b + i * a.rows;
    float* crow = c + i * a.cols;
    std::memset(crow, 0, static_cast<size_t>(a.cols) * sizeof(float));
    for (int64_t j = 0; j < a.rows; ++j) {
      const float bv = brow[j];
      if (bv == 0.0f) continue;
      for (int64_t p = a.row_ptr[static_cast<size_t>(j)];
           p < a.row_ptr[static_cast<size_t>(j) + 1]; ++p) {
        crow[a.col_idx[static_cast<size_t>(p)]] += bv * a.values[static_cast<size_t>(p)];
      }
    }
  }
}

FEDTINY_KERNEL_CLONES
void spmm_tn_serial(const sparse::CsrMatrix& a, const float* b, int64_t n, float* c) {
  // Serial scatter (C rows are shared across CSR rows — same contract as
  // reference). Two CSR entries per pass: col_idx is strictly ascending
  // within a row, so the two target C rows are distinct and the fused loop
  // loads brow once for both.
  std::memset(c, 0, static_cast<size_t>(a.cols * n) * sizeof(float));
  for (int64_t i = 0; i < a.rows; ++i) {
    const float* brow = b + i * n;
    const int64_t end = a.row_ptr[static_cast<size_t>(i) + 1];
    int64_t p = a.row_ptr[static_cast<size_t>(i)];
    for (; p + 2 <= end; p += 2) {
      const float v0 = a.values[static_cast<size_t>(p)];
      const float v1 = a.values[static_cast<size_t>(p) + 1];
      float* c0 = c + static_cast<int64_t>(a.col_idx[static_cast<size_t>(p)]) * n;
      float* c1 = c + static_cast<int64_t>(a.col_idx[static_cast<size_t>(p) + 1]) * n;
      for (int64_t t = 0; t < n; ++t) {
        c0[t] += v0 * brow[t];
        c1[t] += v1 * brow[t];
      }
    }
    for (; p < end; ++p) {
      const float v = a.values[static_cast<size_t>(p)];
      float* crow = c + static_cast<int64_t>(a.col_idx[static_cast<size_t>(p)]) * n;
      for (int64_t t = 0; t < n; ++t) crow[t] += v * brow[t];
    }
  }
}

FEDTINY_KERNEL_CLONES
void masked_grad_dot_row(const sparse::CsrMatrix& s, const float* arow, const float* b, int64_t n,
                         float* grow, int64_t i) {
  // One contiguous dot per structure entry, kNr independent partial sums.
  for (int64_t p = s.row_ptr[static_cast<size_t>(i)]; p < s.row_ptr[static_cast<size_t>(i) + 1];
       ++p) {
    const float* brow = b + static_cast<int64_t>(s.col_idx[static_cast<size_t>(p)]) * n;
    float acc[kNr] = {};
    int64_t t = 0;
    for (; t + kNr <= n; t += kNr) {
      for (int64_t u = 0; u < kNr; ++u) acc[u] += arow[t + u] * brow[t + u];
    }
    for (; t < n; ++t) acc[0] += arow[t] * brow[t];
    grow[s.col_idx[static_cast<size_t>(p)]] += reduce_tile(acc);
  }
}

void masked_grad_tn_row(const sparse::CsrMatrix& s, const float* a, const float* b, int64_t n,
                        float* grow, int64_t i) {
  // Four samples per pass: one read-modify-write of grad per structure entry
  // amortizes over four B rows (the reference pays it per sample).
  const int64_t begin = s.row_ptr[static_cast<size_t>(i)];
  const int64_t end = s.row_ptr[static_cast<size_t>(i) + 1];
  int64_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const float av0 = a[(r + 0) * s.rows + i];
    const float av1 = a[(r + 1) * s.rows + i];
    const float av2 = a[(r + 2) * s.rows + i];
    const float av3 = a[(r + 3) * s.rows + i];
    if (av0 == 0.0f && av1 == 0.0f && av2 == 0.0f && av3 == 0.0f) continue;
    const float* b0 = b + (r + 0) * s.cols;
    const float* b1 = b + (r + 1) * s.cols;
    const float* b2 = b + (r + 2) * s.cols;
    const float* b3 = b + (r + 3) * s.cols;
    for (int64_t p = begin; p < end; ++p) {
      const int64_t col = s.col_idx[static_cast<size_t>(p)];
      grow[col] += (av0 * b0[col] + av1 * b1[col]) + (av2 * b2[col] + av3 * b3[col]);
    }
  }
  for (; r < n; ++r) {
    const float av = a[r * s.rows + i];
    if (av == 0.0f) continue;
    const float* brow = b + r * s.cols;
    for (int64_t p = begin; p < end; ++p) {
      grow[s.col_idx[static_cast<size_t>(p)]] += av * brow[s.col_idx[static_cast<size_t>(p)]];
    }
  }
}

}  // namespace

void gemm_fast(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha,
               const float* a, const float* b, float beta, float* c) {
  if (!trans_b) {
    const int64_t bands = (m + kMr - 1) / kMr;
    parallel_for(bands, [&](int64_t band) {
      gemm_bn_band(trans_a, band * kMr, m, n, k, alpha, a, b, beta, c);
    });
    return;
  }
  if (!trans_a) {
    parallel_for(m, [&](int64_t i) { gemm_nt_row(i, n, k, alpha, a, b, beta, c); });
    return;
  }
  // TT: no caller uses it on a hot path; keep the reference loop.
  gemm_reference(trans_a, trans_b, m, n, k, alpha, a, b, beta, c);
}

void spmm_fast(const sparse::CsrMatrix& a, const float* b, int64_t n, float* c, bool accumulate) {
  parallel_for(a.rows, [&](int64_t i) { spmm_row(a, b, n, c + i * n, i, accumulate); });
}

void spmm_nt_fast(const sparse::CsrMatrix& a, const float* b, int64_t n_rows, float* c) {
  const int64_t blocks = (n_rows + 3) / 4;
  parallel_for(blocks, [&](int64_t bi) { spmm_nt_block(a, b, bi * 4, n_rows, c); });
}

void spmm_dn_fast(const sparse::CsrMatrix& a, const float* b, int64_t n_rows, float* c) {
  const int64_t blocks = (n_rows + 3) / 4;
  parallel_for(blocks, [&](int64_t bi) { spmm_dn_block(a, b, bi * 4, n_rows, c); });
}

void spmm_tn_fast(const sparse::CsrMatrix& a, const float* b, int64_t n, float* c) {
  spmm_tn_serial(a, b, n, c);
}

void masked_grad_dot_fast(const sparse::CsrMatrix& s, const float* a, const float* b, int64_t n,
                          float* grad) {
  parallel_for(s.rows,
               [&](int64_t i) { masked_grad_dot_row(s, a + i * n, b, n, grad + i * s.cols, i); });
}

void masked_grad_tn_fast(const sparse::CsrMatrix& s, const float* a, const float* b, int64_t n,
                         float* grad) {
  parallel_for(s.rows, [&](int64_t i) { masked_grad_tn_row(s, a, b, n, grad + i * s.cols, i); });
}

}  // namespace fedtiny::kernels
