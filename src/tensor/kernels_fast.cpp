// Fast kernel implementations: register-blocked / multi-accumulator rewrites
// of the reference loops. Scalar float math only — no intrinsics, no
// fast-math — so they compile anywhere; the speed comes from three sources:
//
//   * fixed-size interleaved accumulator tiles the compiler keeps in SIMD
//     registers (C traffic drops from one load+store per (p, j) visit to one
//     store per output element),
//   * independent accumulator chains that break the FP add latency the
//     reference dot products serialize on,
//   * function multiversioning (target_clones, where the toolchain supports
//     it): each hot helper is compiled for avx512f/avx2/baseline and the
//     dynamic linker picks the widest clone the CPU offers, without giving
//     up the portable baseline binary.
//
// Determinism contract: every blocking factor is a compile-time constant and
// every output element is produced by exactly one parallel_for iteration, so
// results are bitwise-identical across runs, FEDTINY_THREADS values, and
// worker counts on a given machine. They are NOT bitwise-equal to reference
// (reassociated sums and FMA contraction round differently), and the
// selected clone can differ across CPU generations; the parity tests bound
// the drift against reference instead of pinning bits.
//
// Layout note: the per-row/per-tile loop bodies live in flat file-local
// helpers rather than inside the parallel_for lambdas — target_clones
// applies to the function it annotates, and a lambda body is a different
// function that would silently stay on the baseline ISA.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "tensor/kernels.h"
#include "tensor/parallel.h"
#include "tensor/sparse.h"

// Multiversion hot helpers on ELF x86-64 where the compiler understands
// target_clones (GCC and recent Clang); elsewhere compile the portable
// baseline only.
#if defined(__x86_64__) && defined(__ELF__) && defined(__has_attribute)
#if __has_attribute(target_clones)
#define FEDTINY_KERNEL_CLONES __attribute__((target_clones("avx512f", "avx2", "default")))
#endif
// Single-target variant for the non-temporal streaming copy: it needs real
// intrinsics (_mm256_stream_ps has no portable spelling), so it is compiled
// for AVX behind a runtime __builtin_cpu_supports check instead of cloned.
#if __has_attribute(target)
#define FEDTINY_HAVE_AVX_STREAM 1
#include <immintrin.h>
#endif
#endif
#ifndef FEDTINY_KERNEL_CLONES
#define FEDTINY_KERNEL_CLONES
#endif

namespace fedtiny::kernels {

namespace {

// ---- Pack scratch accounting ------------------------------------------------
// Every thread that packs B panels holds one arena, capped at a single L2
// panel (the shared-pack engine never needs more). The global byte counter
// sums live capacity across all arenas so tests can assert the scratch
// plateaus instead of growing with lane count x matrix size.

std::atomic<int64_t> g_scratch_bytes{0};

struct PackArena {
  std::vector<float> buf;
  ~PackArena() {
    g_scratch_bytes.fetch_sub(static_cast<int64_t>(buf.capacity() * sizeof(float)),
                              std::memory_order_relaxed);
  }
  float* get(size_t floats) {
    if (floats > buf.size()) {
      g_scratch_bytes.fetch_sub(static_cast<int64_t>(buf.capacity() * sizeof(float)),
                                std::memory_order_relaxed);
      buf.resize(floats);
      buf.shrink_to_fit();
      g_scratch_bytes.fetch_add(static_cast<int64_t>(buf.capacity() * sizeof(float)),
                                std::memory_order_relaxed);
    }
    return buf.data();
  }
};

float* pack_arena(size_t floats) {
  static thread_local PackArena arena;
  return arena.get(floats);
}

// ---- Kernel lane sizing -----------------------------------------------------
// Extra Executor-budget lanes worth requesting for a call of `work` abstract
// units (flops for GEMM, bytes for the data movers). Below 2x the per-lane
// floor the handoff overhead eats the win and the call stays inline; above it
// one extra lane per floor unit, capped at 15 extras (16 lanes total).

constexpr double kMinLaneFlops = 1 << 19;   // ~100 us of register-tile GEMM per lane
constexpr double kMinLaneBytes = 1 << 20;   // ~100 us of streaming copy per lane

int extra_lanes_for(double work, double min_lane_work) {
  if (!(work >= 2.0 * min_lane_work)) return 0;
  const double lanes = work / min_lane_work;
  return lanes >= 16.0 ? 15 : static_cast<int>(lanes) - 1;
}

// GEMM register tile: kMr C-rows x kNr C-columns accumulate in registers
// across the whole k loop. kNr = 16 floats is one full zmm (or two ymm /
// four xmm) per row; kMr = 4 rows keeps the tile within the 16-register
// budget of every x86-64 level.
constexpr int64_t kMr = 4;
constexpr int64_t kNr = 16;

// Cache panel budget for the B operand. The batched conv pipeline feeds the
// GEMMs [fan_in, batch*out_hw] column buffers that overflow L2; without
// panels every row band re-walks all of B from L3. The outer loops below cut
// the B traversal into panels of ~this many bytes so one panel stays
// L2-resident across all bands/rows. Panel geometry depends only on (k, n),
// and panels partition the output columns (NN/TN) or B rows (NT) — every
// output element is still produced by exactly the same accumulation, so
// paneling changes locality, not results.
constexpr int64_t kPanelBytes = 1 << 20;

/// NN/TN: B panel is k rows x pn columns; keep pn a multiple of the kNr tile.
inline int64_t gemm_panel_cols(int64_t k, int64_t n) {
  int64_t pn = kPanelBytes / (static_cast<int64_t>(sizeof(float)) * std::max<int64_t>(k, 1));
  pn = pn / kNr * kNr;
  if (pn < kNr) pn = kNr;
  return pn >= n ? n : pn;
}

/// NT: B panel is pr rows of length k.
inline int64_t gemm_panel_rows(int64_t k, int64_t n) {
  int64_t pr = kPanelBytes / (static_cast<int64_t>(sizeof(float)) * std::max<int64_t>(k, 1));
  if (pr < 8) pr = 8;
  return pr >= n ? n : pr;
}

/// Fixed-order pairwise reduction of kNr partial sums (the order is part of
/// the deterministic-results contract).
inline float reduce_tile(const float* s) {
  float d0 = 0.0f, d1 = 0.0f, d2 = 0.0f, d3 = 0.0f;
  for (int64_t u = 0; u < kNr; u += 4) {
    d0 += s[u];
    d1 += s[u + 1];
    d2 += s[u + 2];
    d3 += s[u + 3];
  }
  return (d0 + d1) + (d2 + d3);
}

/// Write-back for one tile row: c = alpha * acc + beta * c (beta == 0
/// overwrites, so C may start uninitialized).
inline void store_row(float* crow, const float* acc, int64_t nr, float alpha, float beta) {
  if (beta == 0.0f) {
    for (int64_t jj = 0; jj < nr; ++jj) crow[jj] = alpha * acc[jj];
  } else {
    for (int64_t jj = 0; jj < nr; ++jj) crow[jj] = alpha * acc[jj] + beta * crow[jj];
  }
}

/// Epilogue-aware write-back: blend, then row bias, column bias, ReLU — the
/// same order gemm_epilogue_apply uses, so a fused store is bitwise-identical
/// to "plain gemm + ordered post-pass". The loop-invariant branches are
/// unswitched by the compiler; bias terms are only added when present (no
/// "+ 0.0f" that could flip a -0.0 output). The clamp predicate is v > 0.0f —
/// the exact nn::ReLU / gemm_epilogue_apply predicate (normalizes -0.0 to
/// +0.0) — and `mrow`, when given, records it per element for the fused
/// conv+ReLU backward.
inline void store_row_epi(float* crow, const float* acc, int64_t nr, float alpha, float beta,
                          bool has_rbias, float rbias, const float* cbias, bool relu,
                          uint8_t* mrow) {
  for (int64_t jj = 0; jj < nr; ++jj) {
    float v = alpha * acc[jj];
    if (beta != 0.0f) v += beta * crow[jj];
    if (has_rbias) v += rbias;
    if (cbias != nullptr) v += cbias[jj];
    if (relu) {
      const bool pos = v > 0.0f;
      if (mrow != nullptr) mrow[jj] = pos ? 1 : 0;
      if (!pos) v = 0.0f;
    }
    crow[jj] = v;
  }
}

// ---- GEMM bands over a packed B panel --------------------------------------
// Large B operands are repacked one cache panel at a time into strip-major
// layout: strip s holds columns [s*kNr, (s+1)*kNr) of the panel as a
// contiguous [k, kNr] block (zero-padded past the panel edge). Two wins:
//   * the register-tile k-loop reads 64-byte contiguous chunks instead of
//     striding by the full row pitch (a batched conv buffer strides by
//     whole pages, which defeats the L1 prefetcher and thrashes the TLB),
//   * one packed panel serves every row band while it is L2-resident.
// Packing is pure data movement and the tile accumulation order is identical
// to the unpacked tile, so packed NN/TN results are bitwise-equal to the
// unpacked fast path. The NT form reuses the same packed tile (B^T columns
// become strips), trading its old dot-product association for the tile's —
// fast-mode results stay deterministic, only the (tolerance-bounded)
// rounding vs reference shifts.

/// Pack one strip — columns [j0, j0+w) of B[k, n] (op(B) = B) — into a
/// contiguous zero-padded [k, kNr] block. Per-strip granularity so the panel
/// pack can spread strips across kernel lanes (each strip is written by
/// exactly one task; the bytes written don't depend on who writes them).
FEDTINY_KERNEL_CLONES
void gemm_pack_bn_strip(const float* b, int64_t n, int64_t k, int64_t j0, int64_t w, float* dst) {
  for (int64_t p = 0; p < k; ++p) {
    const float* srow = b + p * n + j0;
    float* drow = dst + p * kNr;
    for (int64_t jj = 0; jj < w; ++jj) drow[jj] = srow[jj];
    for (int64_t jj = w; jj < kNr; ++jj) drow[jj] = 0.0f;
  }
}

/// Pack one strip — rows [j0, j0+w) of B[n, k] (op(B) = B^T) — into the same
/// zero-padded [k, kNr] block layout.
FEDTINY_KERNEL_CLONES
void gemm_pack_nt_strip(const float* b, int64_t k, int64_t j0, int64_t w, float* dst) {
  for (int64_t jj = 0; jj < w; ++jj) {
    const float* src = b + (j0 + jj) * k;
    for (int64_t p = 0; p < k; ++p) dst[p * kNr + jj] = src[p];
  }
  for (int64_t p = 0; p < k; ++p) {
    for (int64_t jj = w; jj < kNr; ++jj) dst[p * kNr + jj] = 0.0f;
  }
}

// Flat strip helpers: the tile loops live in their own small functions (not
// inside the big band dispatcher) so the vectorizer reliably keeps the
// accumulators in SIMD registers; A addressing is hoisted to a base-pointer
// + stride pair instead of a per-iteration trans_a ternary.
//
// Width invariance: every accumulation loop below runs at the constant kNr
// width — panel-edge tails are staged through a zero-padded strip first
// (tail_arena) instead of shortening the loop. A runtime-width accumulation
// loop is compiled into several vector/scalar variants whose FMA contraction
// can differ, so the same C column could get different bits depending on
// where the operand's edge fell — i.e. on the total column count n. With the
// constant-width body (and strip boundaries on absolute kNr multiples), a
// C column's bits depend only on its A row and B column, never on n. The
// serving micro-batcher leans on exactly this: rows of a batched forward
// memcmp-equal the same requests served at batch 1.

/// Thread-local zero-padded stage for one panel-edge tail strip ([k, kNr]
/// block, same layout as the packed panels). Deliberately separate from
/// pack_arena: bands run on the calling lane too, and a band staging its
/// tail must not clobber the packed panel that lane's caller still owns.
inline float* tail_arena(int64_t k) {
  thread_local std::vector<float> buf;
  if (static_cast<int64_t>(buf.size()) < k * kNr) buf.resize(static_cast<size_t>(k) * kNr);
  return buf.data();
}

/// Zero-skip accumulation for one C row of a zero-heavy band. Strip-major
/// with the same constant-width body and store as the dense tile: skipped
/// terms contribute exactly +0 (accumulators start at +0 and can never
/// reach -0, so x + (+/-0) == x bitwise), and eligibility depends only on
/// A's zeros and k, so neither the skip nor its bits can vary with n.
FEDTINY_KERNEL_CLONES
void skip_band_row(const float* a0, int64_t astride, int64_t k, const float* b, int64_t n,
                   int64_t i, float alpha, float beta, float* c, const GemmEpilogue& epi,
                   int64_t jb, int64_t je) {
  for (int64_t j0 = jb; j0 < je; j0 += kNr) {
    const int64_t nr = std::min<int64_t>(kNr, je - j0);
    const float* bs = b + j0;
    int64_t bstride = n;
    if (nr < kNr) {
      float* stage = tail_arena(k);
      gemm_pack_bn_strip(b, n, k, j0, nr, stage);
      bs = stage;
      bstride = kNr;
    }
    float acc[kNr] = {};
    for (int64_t p = 0; p < k; ++p) {
      const float av = a0[p * astride];
      if (av == 0.0f) continue;
      const float* brow = bs + p * bstride;
      for (int64_t jj = 0; jj < kNr; ++jj) acc[jj] += av * brow[jj];
    }
    if (!epi.active()) {
      store_row(c + i * n + j0, acc, nr, alpha, beta);
    } else {
      store_row_epi(c + i * n + j0, acc, nr, alpha, beta, epi.row_bias != nullptr,
                    epi.row_bias != nullptr ? epi.row_bias[i] : 0.0f,
                    epi.col_bias != nullptr ? epi.col_bias + j0 : nullptr, epi.relu,
                    epi.relu_mask != nullptr ? epi.relu_mask + i * n + j0 : nullptr);
    }
  }
}

/// One kMr-row register tile over a single B strip. bs/bstride point at the
/// strip's columns wherever they live — packed panel (stride kNr), unpacked
/// operand (stride n), or zero-padded tail stage (stride kNr) — so packed
/// and unpacked GEMMs share one compiled accumulation body and stay
/// bitwise-equal by construction, not by codegen luck.
FEDTINY_KERNEL_CLONES
void tile_strip_rows4(const float* a0, const float* a1, const float* a2, const float* a3,
                      int64_t astride, int64_t k, const float* bs, int64_t bstride, int64_t j0,
                      int64_t nr, int64_t n, int64_t i0, float alpha, float beta, float* c,
                      const GemmEpilogue& epi) {
  float acc0[kNr] = {}, acc1[kNr] = {}, acc2[kNr] = {}, acc3[kNr] = {};
  for (int64_t p = 0; p < k; ++p) {
    const float* brow = bs + p * bstride;
    const float v0 = a0[p * astride];
    const float v1 = a1[p * astride];
    const float v2 = a2[p * astride];
    const float v3 = a3[p * astride];
    for (int64_t jj = 0; jj < kNr; ++jj) {
      const float bv = brow[jj];
      acc0[jj] += v0 * bv;
      acc1[jj] += v1 * bv;
      acc2[jj] += v2 * bv;
      acc3[jj] += v3 * bv;
    }
  }
  if (!epi.active()) {
    store_row(c + (i0 + 0) * n + j0, acc0, nr, alpha, beta);
    store_row(c + (i0 + 1) * n + j0, acc1, nr, alpha, beta);
    store_row(c + (i0 + 2) * n + j0, acc2, nr, alpha, beta);
    store_row(c + (i0 + 3) * n + j0, acc3, nr, alpha, beta);
  } else {
    // Four explicit calls: an acc pointer array here would take the
    // accumulators' addresses and spill them out of SIMD registers.
    const float* cb = epi.col_bias != nullptr ? epi.col_bias + j0 : nullptr;
    const bool rb = epi.row_bias != nullptr;
    uint8_t* mk = epi.relu_mask;
    store_row_epi(c + (i0 + 0) * n + j0, acc0, nr, alpha, beta, rb,
                  rb ? epi.row_bias[i0 + 0] : 0.0f, cb, epi.relu,
                  mk != nullptr ? mk + (i0 + 0) * n + j0 : nullptr);
    store_row_epi(c + (i0 + 1) * n + j0, acc1, nr, alpha, beta, rb,
                  rb ? epi.row_bias[i0 + 1] : 0.0f, cb, epi.relu,
                  mk != nullptr ? mk + (i0 + 1) * n + j0 : nullptr);
    store_row_epi(c + (i0 + 2) * n + j0, acc2, nr, alpha, beta, rb,
                  rb ? epi.row_bias[i0 + 2] : 0.0f, cb, epi.relu,
                  mk != nullptr ? mk + (i0 + 2) * n + j0 : nullptr);
    store_row_epi(c + (i0 + 3) * n + j0, acc3, nr, alpha, beta, rb,
                  rb ? epi.row_bias[i0 + 3] : 0.0f, cb, epi.relu,
                  mk != nullptr ? mk + (i0 + 3) * n + j0 : nullptr);
  }
}

/// Single-row variant of tile_strip_rows4 for the band's row remainder.
FEDTINY_KERNEL_CLONES
void tile_strip_row1(const float* a0, int64_t astride, int64_t k, const float* bs,
                     int64_t bstride, int64_t j0, int64_t nr, int64_t n, int64_t i, float alpha,
                     float beta, float* c, const GemmEpilogue& epi) {
  float acc[kNr] = {};
  for (int64_t p = 0; p < k; ++p) {
    const float av = a0[p * astride];
    const float* brow = bs + p * bstride;
    for (int64_t jj = 0; jj < kNr; ++jj) acc[jj] += av * brow[jj];
  }
  if (!epi.active()) {
    store_row(c + i * n + j0, acc, nr, alpha, beta);
  } else {
    store_row_epi(c + i * n + j0, acc, nr, alpha, beta, epi.row_bias != nullptr,
                  epi.row_bias != nullptr ? epi.row_bias[i] : 0.0f,
                  epi.col_bias != nullptr ? epi.col_bias + j0 : nullptr, epi.relu,
                  epi.relu_mask != nullptr ? epi.relu_mask + i * n + j0 : nullptr);
  }
}

// ---- gemm band: one kMr-row band of C over panel columns [jb, je) ----------
// Interleaved accumulators: the jj loop reads each B chunk once and feeds
// all four C rows, so the compiler vectorizes jj and keeps acc0..acc3 in
// registers. trans_a only changes the (loop-invariant) A element address and
// stays outside the vector loop. `pack` (when non-null) supplies the panel
// in strip-major layout; `b` (when non-null) is the unpacked op(B) = B
// operand, required for the zero-heavy skip fallback and the unpacked tile.

FEDTINY_KERNEL_CLONES
void gemm_bn_band(bool trans_a, int64_t i0, int64_t m, int64_t n, int64_t k, float alpha,
                  const float* a, const float* b, const float* pack, float beta, float* c,
                  const GemmEpilogue& epi, int64_t jb, int64_t je) {
  const int64_t mr = std::min<int64_t>(kMr, m - i0);
  const int64_t astride = trans_a ? m : 1;
  // Zero-heavy bands (masked dense weights with no CSR installed) take the
  // reference-style skip loop instead of the full-work tile: the tile is
  // ~4x faster on dense data, so the crossover sits around 25% density.
  // The O(mr*k) scan is 1/n of the band's work, and the choice depends only
  // on A's data and k — never on the panel width — so results stay
  // deterministic across runs, threads, and batch sizes. The skip loop
  // walks unpacked B rows, so it needs b != nullptr (the NT form has no row
  // layout to walk — same as the pre-pack NT path, which never had a skip).
  if (b != nullptr && k >= 8) {
    int64_t zeros = 0;
    for (int64_t r = 0; r < mr; ++r) {
      for (int64_t p = 0; p < k; ++p) {
        zeros += (trans_a ? a[p * m + i0 + r] : a[(i0 + r) * k + p]) == 0.0f ? 1 : 0;
      }
    }
    if (zeros * 4 > mr * k * 3) {  // > 75% zeros
      for (int64_t r = 0; r < mr; ++r) {
        const int64_t i = i0 + r;
        skip_band_row(trans_a ? a + i : a + i * k, astride, k, b, n, i, alpha, beta, c, epi, jb,
                      je);
      }
      return;
    }
  }
  // Tile loop: every strip — packed panel strip, full-width unpacked strip,
  // or zero-padded staged tail — runs the same constant-width tile kernel
  // (see the width-invariance note above the strip helpers). Strip
  // boundaries sit on absolute kNr multiples (panel widths are kNr
  // multiples), so the strip grid over C's columns is the same no matter
  // how wide the operand is or how it was packed.
  for (int64_t s = 0, j0 = jb; j0 < je; ++s, j0 += kNr) {
    const int64_t nr = std::min<int64_t>(kNr, je - j0);
    const float* bs;
    int64_t bstride;
    if (pack != nullptr) {
      bs = pack + s * k * kNr;
      bstride = kNr;
    } else if (nr == kNr) {
      bs = b + j0;
      bstride = n;
    } else {
      float* stage = tail_arena(k);
      gemm_pack_bn_strip(b, n, k, j0, nr, stage);
      bs = stage;
      bstride = kNr;
    }
    if (mr == kMr) {
      tile_strip_rows4(trans_a ? a + (i0 + 0) : a + (i0 + 0) * k,
                       trans_a ? a + (i0 + 1) : a + (i0 + 1) * k,
                       trans_a ? a + (i0 + 2) : a + (i0 + 2) * k,
                       trans_a ? a + (i0 + 3) : a + (i0 + 3) * k, astride, k, bs, bstride, j0, nr,
                       n, i0, alpha, beta, c, epi);
    } else {
      for (int64_t r = 0; r < mr; ++r) {
        const int64_t i = i0 + r;
        tile_strip_row1(trans_a ? a + i : a + i * k, astride, k, bs, bstride, j0, nr, n, i, alpha,
                        beta, c, epi);
      }
    }
  }
}

// ---- gemm NT, small B (A row and B row both contiguous): one C row ----------
// Four dots at a time, kNr independent partial sums each: each A chunk is
// loaded once and fed to all four B rows. Large-B NT calls go through the
// packed tile above instead.

FEDTINY_KERNEL_CLONES
void gemm_nt_row(int64_t i, int64_t n, int64_t k, float alpha, const float* a, const float* b,
                 float beta, float* c, const GemmEpilogue& epi, int64_t jb, int64_t je) {
  constexpr int64_t kJb = 4;
  const float* arow = a + i * k;
  float* crow = c + i * n;
  const bool has_rb = epi.row_bias != nullptr;
  const float rb = has_rb ? epi.row_bias[i] : 0.0f;
  int64_t j0 = jb;
  for (; j0 + kJb <= je; j0 += kJb) {
    const float* b0 = b + (j0 + 0) * k;
    const float* b1 = b + (j0 + 1) * k;
    const float* b2 = b + (j0 + 2) * k;
    const float* b3 = b + (j0 + 3) * k;
    float s0[kNr] = {}, s1[kNr] = {}, s2[kNr] = {}, s3[kNr] = {};
    int64_t p = 0;
    for (; p + kNr <= k; p += kNr) {
      for (int64_t u = 0; u < kNr; ++u) {
        const float av = arow[p + u];
        s0[u] += av * b0[p + u];
        s1[u] += av * b1[p + u];
        s2[u] += av * b2[p + u];
        s3[u] += av * b3[p + u];
      }
    }
    for (; p < k; ++p) {
      const float av = arow[p];
      s0[0] += av * b0[p];
      s1[0] += av * b1[p];
      s2[0] += av * b2[p];
      s3[0] += av * b3[p];
    }
    const float* ss[kJb] = {s0, s1, s2, s3};
    for (int64_t jj = 0; jj < kJb; ++jj) {
      const float dot = alpha * reduce_tile(ss[jj]);
      float v = beta == 0.0f ? dot : dot + beta * crow[j0 + jj];
      if (has_rb) v += rb;
      if (epi.col_bias != nullptr) v += epi.col_bias[j0 + jj];
      if (epi.relu) {
        const bool pos = v > 0.0f;
        if (epi.relu_mask != nullptr) epi.relu_mask[i * n + j0 + jj] = pos ? 1 : 0;
        if (!pos) v = 0.0f;
      }
      crow[j0 + jj] = v;
    }
  }
  for (; j0 < je; ++j0) {
    const float* brow = b + j0 * k;
    float s[kNr] = {};
    int64_t p = 0;
    for (; p + kNr <= k; p += kNr) {
      for (int64_t u = 0; u < kNr; ++u) s[u] += arow[p + u] * brow[p + u];
    }
    for (; p < k; ++p) s[0] += arow[p] * brow[p];
    const float dot = alpha * reduce_tile(s);
    float v = beta == 0.0f ? dot : dot + beta * crow[j0];
    if (has_rb) v += rb;
    if (epi.col_bias != nullptr) v += epi.col_bias[j0];
    if (epi.relu) {
      const bool pos = v > 0.0f;
      if (epi.relu_mask != nullptr) epi.relu_mask[i * n + j0] = pos ? 1 : 0;
      if (!pos) v = 0.0f;
    }
    crow[j0] = v;
  }
}

// ---- CSR row helpers --------------------------------------------------------

FEDTINY_KERNEL_CLONES
void spmm_row(const int64_t* row_ptr, const int32_t* col_idx, const float* values, const float* b,
              int64_t n, const float* btail, float* crow, int64_t i, bool accumulate) {
  // Strip-major with constant-width accumulation (see the width-invariance
  // note above the GEMM strip helpers): full kNr column blocks read B rows
  // directly; the operand's tail columns read the caller's zero-padded
  // stage (btail, [k, kNr] strip layout), so the inner loops never shorten
  // and a C column's bits cannot depend on the total column count n — the
  // CSR layers' share of the serving micro-batcher's row invariant. Four
  // CSR entries per pass amortize the structure walk over four B rows; raw
  // pointers so spmm_tn_fast can run the same kernel over a cached
  // transpose.
  const int64_t begin = row_ptr[static_cast<size_t>(i)];
  const int64_t end = row_ptr[static_cast<size_t>(i) + 1];
  for (int64_t j0 = 0; j0 < n; j0 += kNr) {
    const int64_t nr = std::min<int64_t>(kNr, n - j0);
    const float* bs = b + j0;
    int64_t bstride = n;
    if (nr < kNr) {
      bs = btail;
      bstride = kNr;
    }
    float acc[kNr] = {};
    int64_t p = begin;
    for (; p + 4 <= end; p += 4) {
      const float v0 = values[static_cast<size_t>(p)];
      const float v1 = values[static_cast<size_t>(p) + 1];
      const float v2 = values[static_cast<size_t>(p) + 2];
      const float v3 = values[static_cast<size_t>(p) + 3];
      const float* b0 = bs + static_cast<int64_t>(col_idx[static_cast<size_t>(p)]) * bstride;
      const float* b1 = bs + static_cast<int64_t>(col_idx[static_cast<size_t>(p) + 1]) * bstride;
      const float* b2 = bs + static_cast<int64_t>(col_idx[static_cast<size_t>(p) + 2]) * bstride;
      const float* b3 = bs + static_cast<int64_t>(col_idx[static_cast<size_t>(p) + 3]) * bstride;
      for (int64_t jj = 0; jj < kNr; ++jj) {
        acc[jj] += (v0 * b0[jj] + v1 * b1[jj]) + (v2 * b2[jj] + v3 * b3[jj]);
      }
    }
    for (; p < end; ++p) {
      const float v = values[static_cast<size_t>(p)];
      const float* brow = bs + static_cast<int64_t>(col_idx[static_cast<size_t>(p)]) * bstride;
      for (int64_t jj = 0; jj < kNr; ++jj) acc[jj] += v * brow[jj];
    }
    if (accumulate) {
      for (int64_t jj = 0; jj < nr; ++jj) crow[j0 + jj] += acc[jj];
    } else {
      for (int64_t jj = 0; jj < nr; ++jj) crow[j0 + jj] = acc[jj];
    }
  }
}

// The nt/dn/grad_tn kernels below index B through col_idx (gathers) or
// scatter into C; on those access patterns the wide clones lose (GCC emits
// hardware gather/scatter instructions that run slower than the scalar
// loads), so they stay un-annotated and win through batch blocking instead:
// kBs batch rows share one walk of the CSR structure, amortizing the
// value/col_idx loads and running kBs independent accumulator chains. When
// the matrix carries a column-panel index (fan-in-major panels, see
// sparse::build_panels), the walk additionally iterates panel-major so the
// gathers (nt) / scatters (dn) stay inside one ~1 KiB column window per
// batch row at a time. Panels partition each row's ascending col_idx run, so
// per-output-element accumulation still visits CSR rows/columns in ascending
// order — paneling changes locality and partial-sum association, never the
// visit order, and the fixed geometry keeps results bitwise-deterministic
// across thread and worker counts.

// Batch rows per CSR structure walk (PR 3 used 4): halves the values/col_idx
// stream traffic per batch row while staying in the scalar register budget.
constexpr int64_t kBs = 8;

void spmm_nt_block(const sparse::CsrMatrix& a, const float* b, int64_t i0, int64_t n_rows,
                   float* c) {
  if (i0 + kBs <= n_rows) {
    const float* br[kBs];
    float* cr[kBs];
    for (int64_t u = 0; u < kBs; ++u) {
      br[u] = b + (i0 + u) * a.cols;
      cr[u] = c + (i0 + u) * a.rows;
    }
    if (a.has_panels()) {
      const int64_t np = a.num_panels();
      const size_t out_bytes = static_cast<size_t>(a.rows) * sizeof(float);
      for (int64_t u = 0; u < kBs; ++u) std::memset(cr[u], 0, out_bytes);
      for (int64_t pan = 0; pan < np; ++pan) {
        for (int64_t j = 0; j < a.rows; ++j) {
          const int64_t* pp = a.panel_ptr.data() + j * (np + 1);
          int64_t p = pp[pan];
          const int64_t end = pp[pan + 1];
          if (p == end) continue;
          float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
          float s4 = 0.0f, s5 = 0.0f, s6 = 0.0f, s7 = 0.0f;
          for (; p < end; ++p) {
            const float v = a.values[static_cast<size_t>(p)];
            const int64_t col = a.col_idx[static_cast<size_t>(p)];
            s0 += v * br[0][col];
            s1 += v * br[1][col];
            s2 += v * br[2][col];
            s3 += v * br[3][col];
            s4 += v * br[4][col];
            s5 += v * br[5][col];
            s6 += v * br[6][col];
            s7 += v * br[7][col];
          }
          cr[0][j] += s0;
          cr[1][j] += s1;
          cr[2][j] += s2;
          cr[3][j] += s3;
          cr[4][j] += s4;
          cr[5][j] += s5;
          cr[6][j] += s6;
          cr[7][j] += s7;
        }
      }
      return;
    }
    for (int64_t j = 0; j < a.rows; ++j) {
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      float s4 = 0.0f, s5 = 0.0f, s6 = 0.0f, s7 = 0.0f;
      for (int64_t p = a.row_ptr[static_cast<size_t>(j)];
           p < a.row_ptr[static_cast<size_t>(j) + 1]; ++p) {
        const float v = a.values[static_cast<size_t>(p)];
        const int64_t col = a.col_idx[static_cast<size_t>(p)];
        s0 += v * br[0][col];
        s1 += v * br[1][col];
        s2 += v * br[2][col];
        s3 += v * br[3][col];
        s4 += v * br[4][col];
        s5 += v * br[5][col];
        s6 += v * br[6][col];
        s7 += v * br[7][col];
      }
      cr[0][j] = s0;
      cr[1][j] = s1;
      cr[2][j] = s2;
      cr[3][j] = s3;
      cr[4][j] = s4;
      cr[5][j] = s5;
      cr[6][j] = s6;
      cr[7][j] = s7;
    }
    return;
  }
  // Tail block (< kBs rows): a 4-wide mid-tier keeps the PR 3 amortization
  // for 4-7 leftover batch rows, then one scalar walk per remaining row.
  int64_t i = i0;
  if (i + 4 <= n_rows) {
    const float* b0 = b + (i + 0) * a.cols;
    const float* b1 = b + (i + 1) * a.cols;
    const float* b2 = b + (i + 2) * a.cols;
    const float* b3 = b + (i + 3) * a.cols;
    float* c0 = c + (i + 0) * a.rows;
    float* c1 = c + (i + 1) * a.rows;
    float* c2 = c + (i + 2) * a.rows;
    float* c3 = c + (i + 3) * a.rows;
    for (int64_t j = 0; j < a.rows; ++j) {
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      for (int64_t p = a.row_ptr[static_cast<size_t>(j)];
           p < a.row_ptr[static_cast<size_t>(j) + 1]; ++p) {
        const float v = a.values[static_cast<size_t>(p)];
        const int64_t col = a.col_idx[static_cast<size_t>(p)];
        s0 += v * b0[col];
        s1 += v * b1[col];
        s2 += v * b2[col];
        s3 += v * b3[col];
      }
      c0[j] = s0;
      c1[j] = s1;
      c2[j] = s2;
      c3[j] = s3;
    }
    i += 4;
  }
  for (; i < n_rows; ++i) {
    const float* brow = b + i * a.cols;
    float* crow = c + i * a.rows;
    for (int64_t j = 0; j < a.rows; ++j) {
      float s = 0.0f;
      for (int64_t p = a.row_ptr[static_cast<size_t>(j)];
           p < a.row_ptr[static_cast<size_t>(j) + 1]; ++p) {
        s += a.values[static_cast<size_t>(p)] * brow[a.col_idx[static_cast<size_t>(p)]];
      }
      crow[j] = s;
    }
  }
}

void spmm_dn_block(const sparse::CsrMatrix& a, const float* b, int64_t i0, int64_t n_rows,
                   float* c) {
  if (i0 + kBs <= n_rows) {
    const float* br[kBs];
    float* cr[kBs];
    for (int64_t u = 0; u < kBs; ++u) {
      br[u] = b + (i0 + u) * a.rows;
      cr[u] = c + (i0 + u) * a.cols;
    }
    const size_t row_bytes = static_cast<size_t>(a.cols) * sizeof(float);
    for (int64_t u = 0; u < kBs; ++u) std::memset(cr[u], 0, row_bytes);
    if (a.has_panels()) {
      const int64_t np = a.num_panels();
      for (int64_t pan = 0; pan < np; ++pan) {
        for (int64_t j = 0; j < a.rows; ++j) {
          const int64_t* pp = a.panel_ptr.data() + j * (np + 1);
          int64_t p = pp[pan];
          const int64_t end = pp[pan + 1];
          if (p == end) continue;
          const float v0 = br[0][j], v1 = br[1][j], v2 = br[2][j], v3 = br[3][j];
          const float v4 = br[4][j], v5 = br[5][j], v6 = br[6][j], v7 = br[7][j];
          if (v0 == 0.0f && v1 == 0.0f && v2 == 0.0f && v3 == 0.0f && v4 == 0.0f && v5 == 0.0f &&
              v6 == 0.0f && v7 == 0.0f) {
            continue;
          }
          for (; p < end; ++p) {
            const float v = a.values[static_cast<size_t>(p)];
            const int64_t col = a.col_idx[static_cast<size_t>(p)];
            cr[0][col] += v0 * v;
            cr[1][col] += v1 * v;
            cr[2][col] += v2 * v;
            cr[3][col] += v3 * v;
            cr[4][col] += v4 * v;
            cr[5][col] += v5 * v;
            cr[6][col] += v6 * v;
            cr[7][col] += v7 * v;
          }
        }
      }
      return;
    }
    for (int64_t j = 0; j < a.rows; ++j) {
      const float v0 = br[0][j], v1 = br[1][j], v2 = br[2][j], v3 = br[3][j];
      const float v4 = br[4][j], v5 = br[5][j], v6 = br[6][j], v7 = br[7][j];
      if (v0 == 0.0f && v1 == 0.0f && v2 == 0.0f && v3 == 0.0f && v4 == 0.0f && v5 == 0.0f &&
          v6 == 0.0f && v7 == 0.0f) {
        continue;
      }
      for (int64_t p = a.row_ptr[static_cast<size_t>(j)];
           p < a.row_ptr[static_cast<size_t>(j) + 1]; ++p) {
        const float v = a.values[static_cast<size_t>(p)];
        const int64_t col = a.col_idx[static_cast<size_t>(p)];
        cr[0][col] += v0 * v;
        cr[1][col] += v1 * v;
        cr[2][col] += v2 * v;
        cr[3][col] += v3 * v;
        cr[4][col] += v4 * v;
        cr[5][col] += v5 * v;
        cr[6][col] += v6 * v;
        cr[7][col] += v7 * v;
      }
    }
    return;
  }
  // Tail block (< kBs rows): 4-wide mid-tier, then scalar rows.
  int64_t i = i0;
  if (i + 4 <= n_rows) {
    const float* b0 = b + (i + 0) * a.rows;
    const float* b1 = b + (i + 1) * a.rows;
    const float* b2 = b + (i + 2) * a.rows;
    const float* b3 = b + (i + 3) * a.rows;
    float* c0 = c + (i + 0) * a.cols;
    float* c1 = c + (i + 1) * a.cols;
    float* c2 = c + (i + 2) * a.cols;
    float* c3 = c + (i + 3) * a.cols;
    const size_t row_bytes = static_cast<size_t>(a.cols) * sizeof(float);
    std::memset(c0, 0, row_bytes);
    std::memset(c1, 0, row_bytes);
    std::memset(c2, 0, row_bytes);
    std::memset(c3, 0, row_bytes);
    for (int64_t j = 0; j < a.rows; ++j) {
      const float v0 = b0[j], v1 = b1[j], v2 = b2[j], v3 = b3[j];
      if (v0 == 0.0f && v1 == 0.0f && v2 == 0.0f && v3 == 0.0f) continue;
      for (int64_t p = a.row_ptr[static_cast<size_t>(j)];
           p < a.row_ptr[static_cast<size_t>(j) + 1]; ++p) {
        const float v = a.values[static_cast<size_t>(p)];
        const int64_t col = a.col_idx[static_cast<size_t>(p)];
        c0[col] += v0 * v;
        c1[col] += v1 * v;
        c2[col] += v2 * v;
        c3[col] += v3 * v;
      }
    }
    i += 4;
  }
  for (; i < n_rows; ++i) {
    const float* brow = b + i * a.rows;
    float* crow = c + i * a.cols;
    std::memset(crow, 0, static_cast<size_t>(a.cols) * sizeof(float));
    for (int64_t j = 0; j < a.rows; ++j) {
      const float bv = brow[j];
      if (bv == 0.0f) continue;
      for (int64_t p = a.row_ptr[static_cast<size_t>(j)];
           p < a.row_ptr[static_cast<size_t>(j) + 1]; ++p) {
        crow[a.col_idx[static_cast<size_t>(p)]] += bv * a.values[static_cast<size_t>(p)];
      }
    }
  }
}

FEDTINY_KERNEL_CLONES
void masked_grad_dot_row(const sparse::CsrMatrix& s, const float* arow, const float* b, int64_t n,
                         int64_t t0, int64_t t1, float* grow, int64_t i) {
  // One contiguous dot per structure entry over [t0, t1), kNr independent
  // partial sums. Wide batched operands call this once per t-panel so the
  // gathered B rows stay cache-resident across the row's entries; each
  // panel's partial dot accumulates into grad (one extra rounding per panel,
  // bounded by the parity tests).
  for (int64_t p = s.row_ptr[static_cast<size_t>(i)]; p < s.row_ptr[static_cast<size_t>(i) + 1];
       ++p) {
    const float* brow = b + static_cast<int64_t>(s.col_idx[static_cast<size_t>(p)]) * n;
    float acc[kNr] = {};
    int64_t t = t0;
    for (; t + kNr <= t1; t += kNr) {
      for (int64_t u = 0; u < kNr; ++u) acc[u] += arow[t + u] * brow[t + u];
    }
    for (; t < t1; ++t) acc[0] += arow[t] * brow[t];
    grow[s.col_idx[static_cast<size_t>(p)]] += reduce_tile(acc);
  }
}

void masked_grad_tn_row(const sparse::CsrMatrix& s, const float* a, const float* b, int64_t n,
                        float* grow, int64_t i) {
  // Eight samples per pass (PR 3 used four): one read-modify-write of grad
  // per structure entry amortizes over eight B rows (the reference pays it
  // per sample), halving the col_idx stream and grad update traffic.
  const int64_t begin = s.row_ptr[static_cast<size_t>(i)];
  const int64_t end = s.row_ptr[static_cast<size_t>(i) + 1];
  int64_t r = 0;
  for (; r + kBs <= n; r += kBs) {
    const float av0 = a[(r + 0) * s.rows + i];
    const float av1 = a[(r + 1) * s.rows + i];
    const float av2 = a[(r + 2) * s.rows + i];
    const float av3 = a[(r + 3) * s.rows + i];
    const float av4 = a[(r + 4) * s.rows + i];
    const float av5 = a[(r + 5) * s.rows + i];
    const float av6 = a[(r + 6) * s.rows + i];
    const float av7 = a[(r + 7) * s.rows + i];
    if (av0 == 0.0f && av1 == 0.0f && av2 == 0.0f && av3 == 0.0f && av4 == 0.0f && av5 == 0.0f &&
        av6 == 0.0f && av7 == 0.0f) {
      continue;
    }
    const float* b0 = b + (r + 0) * s.cols;
    const float* b1 = b + (r + 1) * s.cols;
    const float* b2 = b + (r + 2) * s.cols;
    const float* b3 = b + (r + 3) * s.cols;
    const float* b4 = b + (r + 4) * s.cols;
    const float* b5 = b + (r + 5) * s.cols;
    const float* b6 = b + (r + 6) * s.cols;
    const float* b7 = b + (r + 7) * s.cols;
    for (int64_t p = begin; p < end; ++p) {
      const int64_t col = s.col_idx[static_cast<size_t>(p)];
      grow[col] += ((av0 * b0[col] + av1 * b1[col]) + (av2 * b2[col] + av3 * b3[col])) +
                   ((av4 * b4[col] + av5 * b5[col]) + (av6 * b6[col] + av7 * b7[col]));
    }
  }
  // 4-wide mid-tier for 4-7 leftover samples, then the scalar tail.
  if (r + 4 <= n) {
    const float av0 = a[(r + 0) * s.rows + i];
    const float av1 = a[(r + 1) * s.rows + i];
    const float av2 = a[(r + 2) * s.rows + i];
    const float av3 = a[(r + 3) * s.rows + i];
    if (av0 != 0.0f || av1 != 0.0f || av2 != 0.0f || av3 != 0.0f) {
      const float* b0 = b + (r + 0) * s.cols;
      const float* b1 = b + (r + 1) * s.cols;
      const float* b2 = b + (r + 2) * s.cols;
      const float* b3 = b + (r + 3) * s.cols;
      for (int64_t p = begin; p < end; ++p) {
        const int64_t col = s.col_idx[static_cast<size_t>(p)];
        grow[col] += (av0 * b0[col] + av1 * b1[col]) + (av2 * b2[col] + av3 * b3[col]);
      }
    }
    r += 4;
  }
  for (; r < n; ++r) {
    const float av = a[r * s.rows + i];
    if (av == 0.0f) continue;
    const float* brow = b + r * s.cols;
    for (int64_t p = begin; p < end; ++p) {
      grow[s.col_idx[static_cast<size_t>(p)]] += av * brow[s.col_idx[static_cast<size_t>(p)]];
    }
  }
}

// ---- im2col / col2im row helpers -------------------------------------------
// Interior/halo split: for one (kw, stride, pad) tap, the output columns that
// map inside the image are the contiguous range [lo, hi) below; everything
// outside is padding. The reference loop pays a bounds branch per element —
// these helpers zero-fill (im2col) or skip (col2im) the halo once and run the
// pad-free interior as a straight memcpy / vector add (stride 1) or a
// branch-free strided loop.

/// In-bounds output-column range for a tap: ow in [lo, hi) iff
/// 0 <= ow*stride - pad + kw < width.
inline void tap_bounds(int64_t out_w, int64_t width, int64_t kw, int64_t stride, int64_t pad,
                       int64_t* lo, int64_t* hi) {
  const int64_t d = pad - kw;
  int64_t l = d <= 0 ? 0 : (d + stride - 1) / stride;
  // Clamp to the row: kernels wider than width+pad give taps whose first
  // in-bounds column lies past out_w, and the halo memset below sizes off lo.
  if (l > out_w) l = out_w;
  *lo = l;
  const int64_t limit = width - 1 + pad - kw;  // largest in-bounds iw numerator
  int64_t h = limit < 0 ? 0 : limit / stride + 1;
  if (h > out_w) h = out_w;
  if (h < l) h = l;
  *hi = h;
}

FEDTINY_KERNEL_CLONES
void im2col_row(const float* in_c, int64_t height, int64_t width, int64_t kh, int64_t kw,
                int64_t stride, int64_t pad, int64_t out_h, int64_t out_w, float* out_row) {
  int64_t lo = 0, hi = 0;
  tap_bounds(out_w, width, kw, stride, pad, &lo, &hi);
  for (int64_t oh = 0; oh < out_h; ++oh) {
    float* orow = out_row + oh * out_w;
    const int64_t ih = oh * stride - pad + kh;
    if (ih < 0 || ih >= height) {
      std::memset(orow, 0, static_cast<size_t>(out_w) * sizeof(float));
      continue;
    }
    const float* in_row = in_c + ih * width;
    if (lo > 0) std::memset(orow, 0, static_cast<size_t>(lo) * sizeof(float));
    if (hi < out_w) {
      std::memset(orow + hi, 0, static_cast<size_t>(out_w - hi) * sizeof(float));
    }
    if (stride == 1) {
      std::memcpy(orow + lo, in_row + (lo - pad + kw), static_cast<size_t>(hi - lo) * sizeof(float));
    } else {
      for (int64_t ow = lo; ow < hi; ++ow) orow[ow] = in_row[ow * stride - pad + kw];
    }
  }
}

FEDTINY_KERNEL_CLONES
void col2im_tap_add(const float* col_row, float* out_c, int64_t height, int64_t width, int64_t kh,
                    int64_t kw, int64_t stride, int64_t pad, int64_t out_h, int64_t out_w) {
  int64_t lo = 0, hi = 0;
  tap_bounds(out_w, width, kw, stride, pad, &lo, &hi);
  for (int64_t oh = 0; oh < out_h; ++oh) {
    const int64_t ih = oh * stride - pad + kh;
    if (ih < 0 || ih >= height) continue;
    float* out_row = out_c + ih * width;
    const float* crow = col_row + oh * out_w;
    if (stride == 1) {
      // Interior: contiguous accumulate. Within one (kh, kw, oh) tap the
      // ow -> iw map is injective, so vectorizing this loop cannot reorder
      // any single output element's accumulation.
      float* dst = out_row + (lo - pad + kw);
      for (int64_t t = 0; t < hi - lo; ++t) dst[t] += crow[lo + t];
    } else {
      for (int64_t ow = lo; ow < hi; ++ow) out_row[ow * stride - pad + kw] += crow[ow];
    }
  }
}

// ---- Non-temporal row copy --------------------------------------------------
// The batched permutes copy whole page-strided rows that are written once and
// next read by a different kernel (or never this pass) — exactly the pattern
// where regular stores pollute the cache the GEMM panels want. The streaming
// variant bypasses the cache with _mm256_stream_ps; engaged only for large
// buffers (small permutes *want* the destination cached) and only when the
// CPU reports AVX. Bitwise-trivial either way: it is a memcpy.

#ifdef FEDTINY_HAVE_AVX_STREAM
__attribute__((target("avx"))) void copy_stream_avx(float* dst, const float* src, int64_t n) {
  int64_t i = 0;
  // Scalar head until dst hits 32-byte alignment (stream stores require it).
  while (i < n && (reinterpret_cast<uintptr_t>(dst + i) & 31u) != 0) {
    dst[i] = src[i];
    ++i;
  }
  for (; i + 8 <= n; i += 8) _mm256_stream_ps(dst + i, _mm256_loadu_ps(src + i));
  for (; i < n; ++i) dst[i] = src[i];
  // Order the weakly-ordered streaming stores before the pool's completion
  // handshake publishes this chunk.
  _mm_sfence();
}

bool stream_supported() {
  static const bool ok = __builtin_cpu_supports("avx") != 0;
  return ok;
}
#else
bool stream_supported() { return false; }
#endif

// Total buffer size below which the permutes keep regular cached stores.
constexpr int64_t kStreamMinBytes = 1 << 21;

inline void copy_row(float* dst, const float* src, int64_t n, bool stream) {
#ifdef FEDTINY_HAVE_AVX_STREAM
  if (stream) {
    copy_stream_avx(dst, src, n);
    return;
  }
#else
  (void)stream;
#endif
  std::memcpy(dst, src, static_cast<size_t>(n) * sizeof(float));
}

}  // namespace

void gemm_fast(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha,
               const float* a, const float* b, float beta, float* c) {
  gemm_fast_ex(trans_a, trans_b, m, n, k, alpha, a, b, beta, c, GemmEpilogue{});
}

void gemm_fast_ex(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha,
                  const float* a, const float* b, float beta, float* c, const GemmEpilogue& epi) {
  // B operands past this size get panel-packed (see gemm_pack_bn): below it
  // the whole operand is cache-resident and the copy would be pure overhead.
  constexpr int64_t kPackMinBytes = 1 << 18;
  bool packed = k * n * static_cast<int64_t>(sizeof(float)) >= kPackMinBytes;
  if (packed && !trans_b) {
    // Masked-dense A operands (no CSR installed) send most bands down the
    // zero-skip loop, which never reads the pack — packing B would be pure
    // overhead. One layout-independent scan of A decides; like the per-band
    // skip, the choice depends only on the data, so results stay
    // deterministic across runs and threads (and packing never changes NN/TN
    // results bitwise anyway).
    int64_t zeros = 0;
    const int64_t total = m * k;
    for (int64_t i = 0; i < total; ++i) zeros += a[i] == 0.0f ? 1 : 0;
    // > 62.5% zeros: most bands will clear the per-band 75% bar or sit close
    // to it, so the pack would mostly feed skip-path bands that never read
    // it. Measured crossover on the bench shapes sits between 50% (packing
    // wins) and 75% (packing is pure overhead).
    if (zeros * 8 > total * 5) packed = false;
  }
  // One Executor-budget grant covers the whole call: panel packing and the
  // row-band compute share the granted lanes (pack-once/compute-many — the
  // pack lives in the *calling* thread's arena and every lane reads it).
  // Small calls stay inline: below ~2x the per-lane flop floor the pool
  // handoff costs more than it saves.
  KernelLanes lanes(extra_lanes_for(2.0 * static_cast<double>(m) * static_cast<double>(n) *
                                        static_cast<double>(k),
                                    kMinLaneFlops));
  const int extra = lanes.extra();
  if (!trans_b) {
    // Column panels keep the B panel L2-resident across all row bands (see
    // kPanelBytes); panels partition the output columns, so every element is
    // still computed by exactly one band/panel visit. Unpacked calls (small
    // or zero-heavy operands) run one full-width pass — panels without the
    // pack would only fragment the skip loop's row walks.
    const int64_t pn = packed ? gemm_panel_cols(k, n) : n;
    // One panel of per-thread scratch, shared across lanes: strips are packed
    // in parallel (each strip written by exactly one task), then every row
    // band reads the same panel. Row-band boundaries fall on kMr multiples
    // (pool_for_bands grain), so each kMr band computes exactly what the
    // serial walk computes — lane count cannot change bits.
    float* pk = packed ? pack_arena(static_cast<size_t>((pn + kNr - 1) / kNr * kNr * k)) : nullptr;
    for (int64_t jc = 0; jc < n; jc += pn) {
      const int64_t je = std::min<int64_t>(n, jc + pn);
      if (packed) {
        const int64_t strips = (je - jc + kNr - 1) / kNr;
        pool_for_bands(strips, 1, extra, [&](int64_t s0, int64_t s1) {
          for (int64_t s = s0; s < s1; ++s) {
            const int64_t j0 = jc + s * kNr;
            gemm_pack_bn_strip(b, n, k, j0, std::min<int64_t>(kNr, je - j0), pk + s * k * kNr);
          }
        });
      }
      pool_for_bands(m, kMr, extra, [&](int64_t r0, int64_t r1) {
        for (int64_t i0 = r0; i0 < r1; i0 += kMr) {
          gemm_bn_band(trans_a, i0, m, n, k, alpha, a, b, pk, beta, c, epi, jc, je);
        }
      });
    }
    return;
  }
  if (!trans_a) {
    if (packed) {
      // NT through the packed tile: B^T columns pack into the same strip
      // layout, lifting NT to the NN tile's throughput.
      const int64_t pn = gemm_panel_rows(k, n);
      float* pk = pack_arena(static_cast<size_t>((pn + kNr - 1) / kNr * kNr * k));
      for (int64_t jc = 0; jc < n; jc += pn) {
        const int64_t je = std::min<int64_t>(n, jc + pn);
        const int64_t strips = (je - jc + kNr - 1) / kNr;
        pool_for_bands(strips, 1, extra, [&](int64_t s0, int64_t s1) {
          for (int64_t s = s0; s < s1; ++s) {
            const int64_t j0 = jc + s * kNr;
            gemm_pack_nt_strip(b, k, j0, std::min<int64_t>(kNr, je - j0), pk + s * k * kNr);
          }
        });
        pool_for_bands(m, kMr, extra, [&](int64_t r0, int64_t r1) {
          for (int64_t i0 = r0; i0 < r1; i0 += kMr) {
            gemm_bn_band(false, i0, m, n, k, alpha, a, nullptr, pk, beta, c, epi, jc, je);
          }
        });
      }
      return;
    }
    pool_for_bands(m, 1, extra, [&](int64_t r0, int64_t r1) {
      for (int64_t i = r0; i < r1; ++i) gemm_nt_row(i, n, k, alpha, a, b, beta, c, epi, 0, n);
    });
    return;
  }
  // TT: no caller uses it on a hot path; keep the reference loop.
  gemm_reference(trans_a, trans_b, m, n, k, alpha, a, b, beta, c);
  gemm_epilogue_apply(m, n, c, epi);
}

int64_t scratch_bytes() { return g_scratch_bytes.load(std::memory_order_relaxed); }

void im2col_fast(const float* in, int64_t channels, int64_t height, int64_t width,
                 int64_t kernel_h, int64_t kernel_w, int64_t stride, int64_t pad, float* out,
                 int64_t out_ld) {
  const int64_t out_h = (height + 2 * pad - kernel_h) / stride + 1;
  const int64_t out_w = (width + 2 * pad - kernel_w) / stride + 1;
  const int64_t col_rows = channels * kernel_h * kernel_w;
  parallel_for(col_rows, [&](int64_t row) {
    const int64_t c = row / (kernel_h * kernel_w);
    const int64_t rem = row % (kernel_h * kernel_w);
    im2col_row(in + c * height * width, height, width, rem / kernel_w, rem % kernel_w, stride, pad,
               out_h, out_w, out + row * out_ld);
  });
}

void col2im_fast(const float* cols, int64_t channels, int64_t height, int64_t width,
                 int64_t kernel_h, int64_t kernel_w, int64_t stride, int64_t pad, float* out,
                 int64_t cols_ld) {
  const int64_t out_h = (height + 2 * pad - kernel_h) / stride + 1;
  const int64_t out_w = (width + 2 * pad - kernel_w) / stride + 1;
  // Parallel over channels (disjoint scatter targets); the (kh, kw) tap order
  // inside a channel matches reference, keeping results bitwise-identical.
  parallel_for(channels, [&](int64_t c) {
    float* out_c = out + c * height * width;
    for (int64_t kh = 0; kh < kernel_h; ++kh) {
      for (int64_t kw = 0; kw < kernel_w; ++kw) {
        const int64_t row = (c * kernel_h + kh) * kernel_w + kw;
        col2im_tap_add(cols + row * cols_ld, out_c, height, width, kh, kw, stride, pad, out_h,
                       out_w);
      }
    }
  });
}

void im2col_batched_fast(const float* in, int64_t batch, int64_t channels, int64_t height,
                         int64_t width, int64_t kernel_h, int64_t kernel_w, int64_t stride,
                         int64_t pad, float* cols) {
  const int64_t out_h = (height + 2 * pad - kernel_h) / stride + 1;
  const int64_t out_w = (width + 2 * pad - kernel_w) / stride + 1;
  const int64_t taps = kernel_h * kernel_w;
  const int64_t col_rows = channels * taps;
  const int64_t col_cols = out_h * out_w;
  // (sample x column-row) items: each writes one disjoint pitched row of the
  // staging buffer with the single-sample row mover, so any lane count
  // produces the serial bytes.
  const int64_t items = batch * col_rows;
  KernelLanes lanes(
      extra_lanes_for(static_cast<double>(items * col_cols) * 2.0 * sizeof(float), kMinLaneBytes));
  pool_for_bands(items, 1, lanes.extra(), [&](int64_t t0, int64_t t1) {
    for (int64_t t = t0; t < t1; ++t) {
      const int64_t i = t / col_rows;
      const int64_t row = t % col_rows;
      const int64_t c = row / taps;
      const int64_t rem = row % taps;
      im2col_row(in + (i * channels + c) * height * width, height, width, rem / kernel_w,
                 rem % kernel_w, stride, pad, out_h, out_w,
                 cols + row * batch * col_cols + i * col_cols);
    }
  });
}

void col2im_batched_fast(const float* cols, int64_t batch, int64_t channels, int64_t height,
                         int64_t width, int64_t kernel_h, int64_t kernel_w, int64_t stride,
                         int64_t pad, float* out) {
  const int64_t out_h = (height + 2 * pad - kernel_h) / stride + 1;
  const int64_t out_w = (width + 2 * pad - kernel_w) / stride + 1;
  const int64_t col_cols = out_h * out_w;
  // (sample x channel) items: scatter targets are disjoint across items, and
  // within an item the (kh, kw) tap order matches the reference loop, so the
  // threaded accumulate is bitwise-identical at any lane count.
  const int64_t items = batch * channels;
  KernelLanes lanes(extra_lanes_for(
      static_cast<double>(items * kernel_h * kernel_w * col_cols) * 2.0 * sizeof(float),
      kMinLaneBytes));
  pool_for_bands(items, 1, lanes.extra(), [&](int64_t t0, int64_t t1) {
    for (int64_t t = t0; t < t1; ++t) {
      const int64_t i = t / channels;
      const int64_t c = t % channels;
      float* out_c = out + (i * channels + c) * height * width;
      for (int64_t kh = 0; kh < kernel_h; ++kh) {
        for (int64_t kw = 0; kw < kernel_w; ++kw) {
          const int64_t row = (c * kernel_h + kh) * kernel_w + kw;
          col2im_tap_add(cols + row * batch * col_cols + i * col_cols, out_c, height, width, kh,
                         kw, stride, pad, out_h, out_w);
        }
      }
    }
  });
}

void permute_to_samples(const float* staging, int64_t rows, int64_t batch, int64_t cols,
                        float* samples) {
  const int64_t items = batch * rows;
  const double bytes = static_cast<double>(items * cols) * 2.0 * sizeof(float);
  const bool stream =
      items * cols * static_cast<int64_t>(sizeof(float)) >= kStreamMinBytes && stream_supported();
  KernelLanes lanes(extra_lanes_for(bytes, kMinLaneBytes));
  // Item t writes destination row t (contiguous ascending within a band, the
  // layout streaming stores want); the source side takes the page strides.
  pool_for_bands(items, 1, lanes.extra(), [&](int64_t t0, int64_t t1) {
    for (int64_t t = t0; t < t1; ++t) {
      const int64_t i = t / rows;
      const int64_t r = t % rows;
      copy_row(samples + t * cols, staging + r * batch * cols + i * cols, cols, stream);
    }
  });
}

void permute_to_staging(const float* samples, int64_t rows, int64_t batch, int64_t cols,
                        float* staging) {
  const int64_t items = rows * batch;
  const double bytes = static_cast<double>(items * cols) * 2.0 * sizeof(float);
  const bool stream =
      items * cols * static_cast<int64_t>(sizeof(float)) >= kStreamMinBytes && stream_supported();
  KernelLanes lanes(extra_lanes_for(bytes, kMinLaneBytes));
  // Item t = r * batch + i writes staging row-block t (again contiguous on
  // the destination side).
  pool_for_bands(items, 1, lanes.extra(), [&](int64_t t0, int64_t t1) {
    for (int64_t t = t0; t < t1; ++t) {
      const int64_t r = t / batch;
      const int64_t i = t % batch;
      copy_row(staging + t * cols, samples + (i * rows + r) * cols, cols, stream);
    }
  });
}

namespace {

/// Stage the operand's tail columns ([n/kNr*kNr, n)) of B[k, n] as one
/// zero-padded [k, kNr] strip in the calling thread's arena; nullptr when n
/// is a kNr multiple. Lanes only read the stage, so one caller-side copy
/// serves the whole parallel row walk.
const float* spmm_tail_stage(const float* b, int64_t k, int64_t n) {
  const int64_t j0 = n / kNr * kNr;
  if (j0 == n) return nullptr;
  float* stage = tail_arena(k);
  gemm_pack_bn_strip(b, n, k, j0, n - j0, stage);
  return stage;
}

}  // namespace

void spmm_fast(const sparse::CsrMatrix& a, const float* b, int64_t n, float* c, bool accumulate) {
  // Full-width row walks: output-column paneling was tried here and measured
  // slower at the batched conv widths (the 4-entry B-row groups are already
  // streamed once per C row; panels only re-stream the structure).
  const float* btail = spmm_tail_stage(b, a.cols, n);
  parallel_for(a.rows, [&](int64_t i) {
    spmm_row(a.row_ptr.data(), a.col_idx.data(), a.values.data(), b, n, btail, c + i * n, i,
             accumulate);
  });
}

void spmm_nt_fast(const sparse::CsrMatrix& a, const float* b, int64_t n_rows, float* c) {
  const int64_t blocks = (n_rows + kBs - 1) / kBs;
  parallel_for(blocks, [&](int64_t bi) { spmm_nt_block(a, b, bi * kBs, n_rows, c); });
}

void spmm_dn_fast(const sparse::CsrMatrix& a, const float* b, int64_t n_rows, float* c) {
  const int64_t blocks = (n_rows + kBs - 1) / kBs;
  parallel_for(blocks, [&](int64_t bi) { spmm_dn_block(a, b, bi * kBs, n_rows, c); });
}

void spmm_tn_fast(const sparse::CsrMatrix& a, const float* b, int64_t n, float* c) {
  // A^T * B == (transpose of A) * B, run through the spmm row kernel: each C
  // row is produced by one owner with the 4-entry amortized read-modify-write
  // — the in-place scatter form pays a full C-row RMW per structure entry
  // and cannot parallelize (rows shared across CSR rows). Walking A's rows
  // in ascending order fills each transposed row with ascending original-row
  // indices, so per output element the accumulation visits the same terms in
  // the same order as the scatter form modulo the row kernel's fixed 4-entry
  // blocking (tolerance-bounded, and bitwise-deterministic across runs and
  // thread counts as always). Matrices used repeatedly (Conv2d's masked
  // backward) carry a cached transpose (sparse::build_transpose, kept fresh
  // by refresh_values); otherwise build it for this call.
  const float* btail = spmm_tail_stage(b, a.rows, n);
  if (a.has_transpose()) {
    parallel_for(a.cols, [&](int64_t j) {
      spmm_row(a.tr_row_ptr.data(), a.tr_col_idx.data(), a.tr_values.data(), b, n, btail,
               c + j * n, j, /*accumulate=*/false);
    });
    return;
  }
  sparse::CsrMatrix tr;
  sparse::build_transpose(a, tr);  // fills only tr's tr_* arrays, no copy of a
  parallel_for(a.cols, [&](int64_t j) {
    spmm_row(tr.tr_row_ptr.data(), tr.tr_col_idx.data(), tr.tr_values.data(), b, n, btail,
             c + j * n, j, /*accumulate=*/false);
  });
}

void masked_grad_dot_fast(const sparse::CsrMatrix& s, const float* a, const float* b, int64_t n,
                          float* grad) {
  // t-panels keep the gathered B row slices cache-resident for wide batched
  // operands; per grad element each panel contributes one partial dot.
  constexpr int64_t kTn = 512;
  for (int64_t t0 = 0; t0 < n; t0 += kTn) {
    const int64_t t1 = std::min<int64_t>(n, t0 + kTn);
    parallel_for(s.rows, [&](int64_t i) {
      masked_grad_dot_row(s, a + i * n, b, n, t0, t1, grad + i * s.cols, i);
    });
  }
}

void masked_grad_tn_fast(const sparse::CsrMatrix& s, const float* a, const float* b, int64_t n,
                         float* grad) {
  parallel_for(s.rows, [&](int64_t i) { masked_grad_tn_row(s, a, b, n, grad + i * s.cols, i); });
}

}  // namespace fedtiny::kernels
