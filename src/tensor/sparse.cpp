#include "tensor/sparse.h"

#include <cassert>
#include <cstring>

#include "tensor/parallel.h"

namespace fedtiny::sparse {

namespace {

template <typename Keep>
CsrMatrix compact(const float* dense, int64_t rows, int64_t cols, Keep keep) {
  CsrMatrix out;
  out.rows = rows;
  out.cols = cols;
  out.row_ptr.resize(static_cast<size_t>(rows) + 1, 0);
  for (int64_t i = 0; i < rows; ++i) {
    int64_t count = 0;
    for (int64_t j = 0; j < cols; ++j) {
      if (keep(i * cols + j)) ++count;
    }
    out.row_ptr[static_cast<size_t>(i) + 1] = out.row_ptr[static_cast<size_t>(i)] + count;
  }
  out.col_idx.resize(static_cast<size_t>(out.row_ptr[static_cast<size_t>(rows)]));
  out.values.resize(out.col_idx.size());
  for (int64_t i = 0; i < rows; ++i) {
    auto at = static_cast<size_t>(out.row_ptr[static_cast<size_t>(i)]);
    for (int64_t j = 0; j < cols; ++j) {
      const int64_t flat = i * cols + j;
      if (keep(flat)) {
        out.col_idx[at] = static_cast<int32_t>(j);
        out.values[at] = dense[flat];
        ++at;
      }
    }
  }
  return out;
}

}  // namespace

int64_t mask_nnz(std::span<const uint8_t> mask) {
  int64_t kept = 0;
  for (uint8_t m : mask) kept += m != 0 ? 1 : 0;
  return kept;
}

double mask_density(std::span<const uint8_t> mask) {
  return mask.empty() ? 1.0
                      : static_cast<double>(mask_nnz(mask)) / static_cast<double>(mask.size());
}

CsrMatrix csr_from_mask(const float* dense, int64_t rows, int64_t cols,
                        std::span<const uint8_t> mask) {
  assert(static_cast<int64_t>(mask.size()) == rows * cols);
  return compact(dense, rows, cols,
                 [&](int64_t flat) { return mask[static_cast<size_t>(flat)] != 0; });
}

CsrMatrix csr_from_dense(const float* dense, int64_t rows, int64_t cols) {
  return compact(dense, rows, cols, [&](int64_t flat) { return dense[flat] != 0.0f; });
}

void refresh_values(CsrMatrix& out, const float* dense) {
  for (int64_t i = 0; i < out.rows; ++i) {
    const float* row = dense + i * out.cols;
    for (int64_t p = out.row_ptr[static_cast<size_t>(i)];
         p < out.row_ptr[static_cast<size_t>(i) + 1]; ++p) {
      out.values[static_cast<size_t>(p)] = row[out.col_idx[static_cast<size_t>(p)]];
    }
  }
}

void csr_to_dense(const CsrMatrix& a, float* dense) {
  std::memset(dense, 0, static_cast<size_t>(a.rows * a.cols) * sizeof(float));
  for (int64_t i = 0; i < a.rows; ++i) {
    float* row = dense + i * a.cols;
    for (int64_t p = a.row_ptr[static_cast<size_t>(i)]; p < a.row_ptr[static_cast<size_t>(i) + 1];
         ++p) {
      row[a.col_idx[static_cast<size_t>(p)]] = a.values[static_cast<size_t>(p)];
    }
  }
}

void spmm(const CsrMatrix& a, const float* b, int64_t n, float* c, bool accumulate) {
  // Row-of-C parallel: each CSR row touches only its own output row. The
  // inner accumulation visits columns in ascending order, matching the dense
  // gemm's k-loop with zero-skipping (bitwise-identical results).
  parallel_for(a.rows, [&](int64_t i) {
    float* crow = c + i * n;
    if (!accumulate) std::memset(crow, 0, static_cast<size_t>(n) * sizeof(float));
    for (int64_t p = a.row_ptr[static_cast<size_t>(i)]; p < a.row_ptr[static_cast<size_t>(i) + 1];
         ++p) {
      const float v = a.values[static_cast<size_t>(p)];
      const float* brow = b + static_cast<int64_t>(a.col_idx[static_cast<size_t>(p)]) * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += v * brow[j];
    }
  });
}

void spmv(const CsrMatrix& a, const float* x, float* y) {
  parallel_for(a.rows, [&](int64_t i) {
    float s = 0.0f;
    for (int64_t p = a.row_ptr[static_cast<size_t>(i)]; p < a.row_ptr[static_cast<size_t>(i) + 1];
         ++p) {
      s += a.values[static_cast<size_t>(p)] * x[a.col_idx[static_cast<size_t>(p)]];
    }
    y[i] = s;
  });
}

void spmm_dn(const CsrMatrix& a, const float* b, int64_t n_rows, float* c) {
  // C row i accumulates over CSR rows j in ascending order — the dense
  // gemm(false, false) k-loop, which also skips b[i, j] == 0, so the skip is
  // mirrored here for bitwise agreement.
  parallel_for(n_rows, [&](int64_t i) {
    const float* brow = b + i * a.rows;
    float* crow = c + i * a.cols;
    std::memset(crow, 0, static_cast<size_t>(a.cols) * sizeof(float));
    for (int64_t j = 0; j < a.rows; ++j) {
      const float bv = brow[j];
      if (bv == 0.0f) continue;
      for (int64_t p = a.row_ptr[static_cast<size_t>(j)];
           p < a.row_ptr[static_cast<size_t>(j) + 1]; ++p) {
        crow[a.col_idx[static_cast<size_t>(p)]] += bv * a.values[static_cast<size_t>(p)];
      }
    }
  });
}

void spmm_tn(const CsrMatrix& a, const float* b, int64_t n, float* c) {
  // Scatter form: every output element (j, t) accumulates over CSR rows i in
  // ascending order, exactly the dense gemm(true, false) k-loop with its
  // zero-operand skip (kept-but-zero values are skipped there too).
  std::memset(c, 0, static_cast<size_t>(a.cols * n) * sizeof(float));
  for (int64_t i = 0; i < a.rows; ++i) {
    const float* brow = b + i * n;
    for (int64_t p = a.row_ptr[static_cast<size_t>(i)]; p < a.row_ptr[static_cast<size_t>(i) + 1];
         ++p) {
      const float v = a.values[static_cast<size_t>(p)];
      if (v == 0.0f) continue;
      float* crow = c + static_cast<int64_t>(a.col_idx[static_cast<size_t>(p)]) * n;
      for (int64_t t = 0; t < n; ++t) crow[t] += v * brow[t];
    }
  }
}

void masked_grad_dot(const CsrMatrix& s, const float* a, const float* b, int64_t n, float* grad) {
  // Per structure entry: one contiguous dot over t ascending, then a single
  // add into grad — the dense gemm(false, true) dot-product path restricted
  // to the mask's support. Rows of grad are disjoint across CSR rows.
  parallel_for(s.rows, [&](int64_t i) {
    const float* arow = a + i * n;
    float* grow = grad + i * s.cols;
    for (int64_t p = s.row_ptr[static_cast<size_t>(i)]; p < s.row_ptr[static_cast<size_t>(i) + 1];
         ++p) {
      const float* brow = b + static_cast<int64_t>(s.col_idx[static_cast<size_t>(p)]) * n;
      float acc = 0.0f;
      for (int64_t t = 0; t < n; ++t) acc += arow[t] * brow[t];
      grow[s.col_idx[static_cast<size_t>(p)]] += acc;
    }
  });
}

void masked_grad_tn(const CsrMatrix& s, const float* a, const float* b, int64_t n, float* grad) {
  // Per structure row i: accumulate over samples r ascending, skipping
  // a[r, i] == 0 — the dense gemm(true, false) k-loop order and skip,
  // restricted to the mask's support. Rows of grad are disjoint.
  parallel_for(s.rows, [&](int64_t i) {
    float* grow = grad + i * s.cols;
    for (int64_t r = 0; r < n; ++r) {
      const float av = a[r * s.rows + i];
      if (av == 0.0f) continue;
      const float* brow = b + r * s.cols;
      for (int64_t p = s.row_ptr[static_cast<size_t>(i)];
           p < s.row_ptr[static_cast<size_t>(i) + 1]; ++p) {
        grow[s.col_idx[static_cast<size_t>(p)]] += av * brow[s.col_idx[static_cast<size_t>(p)]];
      }
    }
  });
}

void spmm_nt(const CsrMatrix& a, const float* b, int64_t n_rows, float* c) {
  // C[i, j] = <B row i, A row j>; the sparse dot walks A's kept columns in
  // ascending order — same accumulation order as the dense dot over all k.
  parallel_for(n_rows, [&](int64_t i) {
    const float* brow = b + i * a.cols;
    float* crow = c + i * a.rows;
    for (int64_t j = 0; j < a.rows; ++j) {
      float s = 0.0f;
      for (int64_t p = a.row_ptr[static_cast<size_t>(j)];
           p < a.row_ptr[static_cast<size_t>(j) + 1]; ++p) {
        s += a.values[static_cast<size_t>(p)] * brow[a.col_idx[static_cast<size_t>(p)]];
      }
      crow[j] = s;
    }
  });
}

}  // namespace fedtiny::sparse
