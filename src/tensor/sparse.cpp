#include "tensor/sparse.h"

#include <cassert>
#include <cstring>

#include "tensor/kernels.h"
#include "tensor/parallel.h"

namespace fedtiny::sparse {

namespace {

template <typename Keep>
CsrMatrix compact(const float* dense, int64_t rows, int64_t cols, Keep keep) {
  CsrMatrix out;
  out.rows = rows;
  out.cols = cols;
  out.row_ptr.resize(static_cast<size_t>(rows) + 1, 0);
  for (int64_t i = 0; i < rows; ++i) {
    int64_t count = 0;
    for (int64_t j = 0; j < cols; ++j) {
      if (keep(i * cols + j)) ++count;
    }
    out.row_ptr[static_cast<size_t>(i) + 1] = out.row_ptr[static_cast<size_t>(i)] + count;
  }
  out.col_idx.resize(static_cast<size_t>(out.row_ptr[static_cast<size_t>(rows)]));
  out.values.resize(out.col_idx.size());
  for (int64_t i = 0; i < rows; ++i) {
    auto at = static_cast<size_t>(out.row_ptr[static_cast<size_t>(i)]);
    for (int64_t j = 0; j < cols; ++j) {
      const int64_t flat = i * cols + j;
      if (keep(flat)) {
        out.col_idx[at] = static_cast<int32_t>(j);
        out.values[at] = dense[flat];
        ++at;
      }
    }
  }
  return out;
}

}  // namespace

void build_panels(CsrMatrix& m, int64_t width) {
  if (width <= 0) {
    m.panel_width = 0;
    m.panel_ptr.clear();
    return;
  }
  m.panel_width = width;
  const int64_t np = m.num_panels();
  m.panel_ptr.assign(static_cast<size_t>(m.rows * (np + 1)), 0);
  // One ascending walk per row: col_idx is sorted within a row, so panel
  // boundaries are found by advancing a single cursor.
  for (int64_t i = 0; i < m.rows; ++i) {
    int64_t* row = m.panel_ptr.data() + i * (np + 1);
    int64_t p = m.row_ptr[static_cast<size_t>(i)];
    const int64_t end = m.row_ptr[static_cast<size_t>(i) + 1];
    row[0] = p;
    for (int64_t pan = 0; pan < np; ++pan) {
      const int64_t col_end = (pan + 1) * width;
      while (p < end && static_cast<int64_t>(m.col_idx[static_cast<size_t>(p)]) < col_end) ++p;
      row[pan + 1] = p;
    }
  }
}

int64_t mask_nnz(std::span<const uint8_t> mask) {
  int64_t kept = 0;
  for (uint8_t m : mask) kept += m != 0 ? 1 : 0;
  return kept;
}

double mask_density(std::span<const uint8_t> mask) {
  return mask.empty() ? 1.0
                      : static_cast<double>(mask_nnz(mask)) / static_cast<double>(mask.size());
}

CsrMatrix csr_from_mask(const float* dense, int64_t rows, int64_t cols,
                        std::span<const uint8_t> mask) {
  assert(static_cast<int64_t>(mask.size()) == rows * cols);
  return compact(dense, rows, cols,
                 [&](int64_t flat) { return mask[static_cast<size_t>(flat)] != 0; });
}

CsrMatrix csr_from_dense(const float* dense, int64_t rows, int64_t cols) {
  return compact(dense, rows, cols, [&](int64_t flat) { return dense[flat] != 0.0f; });
}

void refresh_values(CsrMatrix& out, const float* dense) {
  for (int64_t i = 0; i < out.rows; ++i) {
    const float* row = dense + i * out.cols;
    for (int64_t p = out.row_ptr[static_cast<size_t>(i)];
         p < out.row_ptr[static_cast<size_t>(i) + 1]; ++p) {
      out.values[static_cast<size_t>(p)] = row[out.col_idx[static_cast<size_t>(p)]];
    }
  }
  if (out.has_transpose()) {
    for (size_t p = 0; p < out.tr_values.size(); ++p) {
      out.tr_values[p] = out.values[static_cast<size_t>(out.tr_perm[p])];
    }
  }
}

void build_transpose(const CsrMatrix& src, CsrMatrix& out) {
  const int64_t nnz = src.nnz();
  out.tr_row_ptr.assign(static_cast<size_t>(src.cols) + 1, 0);
  for (int64_t p = 0; p < nnz; ++p) {
    ++out.tr_row_ptr[static_cast<size_t>(src.col_idx[static_cast<size_t>(p)]) + 1];
  }
  for (int64_t j = 0; j < src.cols; ++j) {
    out.tr_row_ptr[static_cast<size_t>(j) + 1] += out.tr_row_ptr[static_cast<size_t>(j)];
  }
  out.tr_col_idx.resize(static_cast<size_t>(nnz));
  out.tr_values.resize(static_cast<size_t>(nnz));
  out.tr_perm.resize(static_cast<size_t>(nnz));
  std::vector<int64_t> cursor(out.tr_row_ptr.begin(), out.tr_row_ptr.end() - 1);
  // Walking rows in ascending order fills each transposed row with ascending
  // original-row indices — the order the spmm_tn accumulation contract wants.
  for (int64_t i = 0; i < src.rows; ++i) {
    for (int64_t p = src.row_ptr[static_cast<size_t>(i)];
         p < src.row_ptr[static_cast<size_t>(i) + 1]; ++p) {
      const auto col = static_cast<size_t>(src.col_idx[static_cast<size_t>(p)]);
      const auto at = static_cast<size_t>(cursor[col]++);
      out.tr_col_idx[at] = static_cast<int32_t>(i);
      out.tr_values[at] = src.values[static_cast<size_t>(p)];
      out.tr_perm[at] = p;
    }
  }
}

void csr_to_dense(const CsrMatrix& a, float* dense) {
  std::memset(dense, 0, static_cast<size_t>(a.rows * a.cols) * sizeof(float));
  for (int64_t i = 0; i < a.rows; ++i) {
    float* row = dense + i * a.cols;
    for (int64_t p = a.row_ptr[static_cast<size_t>(i)]; p < a.row_ptr[static_cast<size_t>(i) + 1];
         ++p) {
      row[a.col_idx[static_cast<size_t>(p)]] = a.values[static_cast<size_t>(p)];
    }
  }
}

void spmm(const CsrMatrix& a, const float* b, int64_t n, float* c, bool accumulate) {
  if (kernels::mode() == kernels::Mode::kFast) {
    kernels::spmm_fast(a, b, n, c, accumulate);
  } else {
    kernels::spmm_reference(a, b, n, c, accumulate);
  }
}

void spmv(const CsrMatrix& a, const float* x, float* y) {
  parallel_for(a.rows, [&](int64_t i) {
    float s = 0.0f;
    for (int64_t p = a.row_ptr[static_cast<size_t>(i)]; p < a.row_ptr[static_cast<size_t>(i) + 1];
         ++p) {
      s += a.values[static_cast<size_t>(p)] * x[a.col_idx[static_cast<size_t>(p)]];
    }
    y[i] = s;
  });
}

void spmm_dn(const CsrMatrix& a, const float* b, int64_t n_rows, float* c) {
  if (kernels::mode() == kernels::Mode::kFast) {
    kernels::spmm_dn_fast(a, b, n_rows, c);
  } else {
    kernels::spmm_dn_reference(a, b, n_rows, c);
  }
}

void spmm_tn(const CsrMatrix& a, const float* b, int64_t n, float* c) {
  if (kernels::mode() == kernels::Mode::kFast) {
    kernels::spmm_tn_fast(a, b, n, c);
  } else {
    kernels::spmm_tn_reference(a, b, n, c);
  }
}

void masked_grad_dot(const CsrMatrix& s, const float* a, const float* b, int64_t n, float* grad) {
  if (kernels::mode() == kernels::Mode::kFast) {
    kernels::masked_grad_dot_fast(s, a, b, n, grad);
  } else {
    kernels::masked_grad_dot_reference(s, a, b, n, grad);
  }
}

void masked_grad_tn(const CsrMatrix& s, const float* a, const float* b, int64_t n, float* grad) {
  if (kernels::mode() == kernels::Mode::kFast) {
    kernels::masked_grad_tn_fast(s, a, b, n, grad);
  } else {
    kernels::masked_grad_tn_reference(s, a, b, n, grad);
  }
}

void spmm_nt(const CsrMatrix& a, const float* b, int64_t n_rows, float* c) {
  if (kernels::mode() == kernels::Mode::kFast) {
    kernels::spmm_nt_fast(a, b, n_rows, c);
  } else {
    kernels::spmm_nt_reference(a, b, n_rows, c);
  }
}

}  // namespace fedtiny::sparse
