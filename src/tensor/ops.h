// Math kernels shared by the neural-network layers: GEMM, im2col/col2im,
// and a handful of elementwise helpers. GEMM dispatches on the process-wide
// kernel engine mode (tensor/kernels.h): `reference` scalar loops (the
// bitwise oracle) or register-blocked `fast` kernels (the default). The
// remaining helpers are plain loops with OpenMP-parallel outer dimensions —
// fast enough for the scaled-down reproduction workloads, dependency-free.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.h"

namespace fedtiny::ops {

/// C[m,n] = alpha * op(A) * op(B) + beta * C.
/// op(A) is A[m,k] when !trans_a, A^T (stored as [k,m]) when trans_a.
void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha,
          const float* a, const float* b, float beta, float* c);

/// Expand input image patches into columns.
/// in: [C, H, W] single image. out: [C*kh*kw, out_h*out_w].
void im2col(const float* in, int64_t channels, int64_t height, int64_t width, int64_t kernel_h,
            int64_t kernel_w, int64_t stride, int64_t pad, float* out);

/// Inverse of im2col: scatter-add columns back to image gradient.
void col2im(const float* cols, int64_t channels, int64_t height, int64_t width, int64_t kernel_h,
            int64_t kernel_w, int64_t stride, int64_t pad, float* out);

/// y += alpha * x.
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// Elementwise y = x * m (mask application).
void apply_mask(std::span<float> x, std::span<const uint8_t> mask);

/// Sum of all elements.
double sum(std::span<const float> x);

/// L2 norm.
double l2_norm(std::span<const float> x);

/// Output spatial size for a conv/pool dimension.
inline int64_t conv_out_size(int64_t in, int64_t kernel, int64_t stride, int64_t pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace fedtiny::ops
