// Math kernels shared by the neural-network layers: GEMM, im2col/col2im,
// and a handful of elementwise helpers. GEMM and im2col/col2im dispatch on
// the process-wide kernel engine mode (tensor/kernels.h): `reference` scalar
// loops (the bitwise oracle) or vectorized `fast` implementations (the
// default). The remaining helpers are plain loops with OpenMP-parallel outer
// dimensions — fast enough for the scaled-down reproduction workloads,
// dependency-free.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/kernels.h"
#include "tensor/tensor.h"

namespace fedtiny::ops {

/// C[m,n] = alpha * op(A) * op(B) + beta * C.
/// op(A) is A[m,k] when !trans_a, A^T (stored as [k,m]) when trans_a.
void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha,
          const float* a, const float* b, float beta, float* c);

/// gemm with a fused bias(+ReLU) epilogue (see kernels::GemmEpilogue). The
/// epilogue's effect is mode-independent: fast mode fuses it into the tile
/// write-back, reference mode applies it as an ordered post-pass over C —
/// both bitwise-identical to running the plain gemm of the same mode
/// followed by the separate bias/activation loops the layers used before.
void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha, const float* a,
          const float* b, float beta, float* c, const kernels::GemmEpilogue& epi);

/// Expand input image patches into columns.
/// in: [C, H, W] single image. out: [C*kh*kw, out_h*out_w].
void im2col(const float* in, int64_t channels, int64_t height, int64_t width, int64_t kernel_h,
            int64_t kernel_w, int64_t stride, int64_t pad, float* out);

/// im2col with an explicit output row pitch `out_ld` (>= out_h*out_w): the
/// batched conv pipeline packs per-sample blocks side by side in one
/// [C*kh*kw, batch*out_h*out_w] buffer and passes the block's base pointer
/// plus the full buffer pitch. Fast and reference modes write identical bits
/// (pure data movement).
void im2col(const float* in, int64_t channels, int64_t height, int64_t width, int64_t kernel_h,
            int64_t kernel_w, int64_t stride, int64_t pad, float* out, int64_t out_ld);

/// Inverse of im2col: scatter-add columns back to image gradient.
void col2im(const float* cols, int64_t channels, int64_t height, int64_t width, int64_t kernel_h,
            int64_t kernel_w, int64_t stride, int64_t pad, float* out);

/// col2im with an explicit input row pitch `cols_ld` (batched column buffer,
/// see the im2col overload). Fast and reference modes produce identical bits
/// (the fast variant preserves the per-element accumulation order).
void col2im(const float* cols, int64_t channels, int64_t height, int64_t width, int64_t kernel_h,
            int64_t kernel_w, int64_t stride, int64_t pad, float* out, int64_t cols_ld);

/// Whole-batch im2col into one [C*kh*kw, batch*out_h*out_w] staging buffer
/// (sample i's block at column i*out_h*out_w). Fast threads (sample x row)
/// items over kernel lanes; both modes write identical bits.
void im2col_batched(const float* in, int64_t batch, int64_t channels, int64_t height, int64_t width,
                    int64_t kernel_h, int64_t kernel_w, int64_t stride, int64_t pad, float* cols);

/// Whole-batch col2im accumulating into `out` (batch contiguous [C, H, W]
/// samples, caller-zeroed). Fast threads (sample x channel) items; both modes
/// produce identical bits.
void col2im_batched(const float* cols, int64_t batch, int64_t channels, int64_t height,
                    int64_t width, int64_t kernel_h, int64_t kernel_w, int64_t stride, int64_t pad,
                    float* out);

/// y += alpha * x.
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// Elementwise y = x * m (mask application).
void apply_mask(std::span<float> x, std::span<const uint8_t> mask);

/// Sum of all elements.
double sum(std::span<const float> x);

/// L2 norm.
double l2_norm(std::span<const float> x);

/// Output spatial size for a conv/pool dimension.
inline int64_t conv_out_size(int64_t in, int64_t kernel, int64_t stride, int64_t pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace fedtiny::ops
