// CSR sparse matrices and the sparse kernels behind the nn-layer sparse
// forward dispatch (Linear / Conv2d at low mask density).
//
// Every kernel below dispatches on the process-wide kernel engine mode
// (tensor/kernels.h, FEDTINY_KERNELS=reference|fast).
//
// Numerical contract (reference mode): every kernel accumulates along
// ascending column index, exactly the order in which the dense kernels in
// tensor/ops.cpp visit the same coordinates while skipping stored zeros.
// Because adding a zero term is exact in IEEE float, a reference-mode CSR
// forward over a masked weight is therefore bitwise identical to the
// reference-mode dense forward over the same weight with masked entries
// stored as zeros — the dense path doubles as an oracle in tests. Fast mode
// reassociates the sums (blocked, multi-accumulator): still deterministic
// across runs and worker counts, but only tolerance-close to reference.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace fedtiny::sparse {

/// Compressed-sparse-row float32 matrix.
struct CsrMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<int64_t> row_ptr;  // rows + 1 entries
  std::vector<int32_t> col_idx;  // nnz entries, ascending within each row
  std::vector<float> values;     // nnz entries

  [[nodiscard]] int64_t nnz() const { return static_cast<int64_t>(values.size()); }
  [[nodiscard]] bool empty() const { return rows == 0; }
  [[nodiscard]] double density() const {
    const int64_t total = rows * cols;
    return total > 0 ? static_cast<double>(nnz()) / static_cast<double>(total) : 0.0;
  }
};

/// Number of non-zero bytes in a mask.
int64_t mask_nnz(std::span<const uint8_t> mask);

/// Kept fraction of a mask; an empty mask counts as fully dense.
double mask_density(std::span<const uint8_t> mask);

/// Compact a dense row-major [rows, cols] matrix to CSR, keeping entries
/// whose mask byte is non-zero. mask.size() must equal rows * cols. Entries
/// that are masked-in but numerically zero are kept: the CSR structure
/// mirrors the mask, not the value pattern, so a weight update never changes
/// the compaction structure within a round.
CsrMatrix csr_from_mask(const float* dense, int64_t rows, int64_t cols,
                        std::span<const uint8_t> mask);

/// Compact keeping the non-zero value pattern (no mask available).
CsrMatrix csr_from_dense(const float* dense, int64_t rows, int64_t cols);

/// Refresh `out.values` from a dense matrix with an unchanged structure
/// (same mask => same col_idx/row_ptr). Cheaper than re-running
/// csr_from_mask when only the values moved.
void refresh_values(CsrMatrix& out, const float* dense);

/// Scatter to a zeroed dense row-major [rows, cols] buffer.
void csr_to_dense(const CsrMatrix& a, float* dense);

/// C[m, n] = A[m, k] * B[k, n], A in CSR, B/C dense row-major.
/// When accumulate is false C is overwritten, otherwise added into.
/// This is the Conv2d forward: W_csr[out_c, in_c*k*k] * cols.
void spmm(const CsrMatrix& a, const float* b, int64_t n, float* c, bool accumulate = false);

/// y[m] = A[m, k] * x[k].
void spmv(const CsrMatrix& a, const float* x, float* y);

/// C[n_rows, m] = B[n_rows, k] * A[m, k]^T, A in CSR, B/C dense row-major.
/// This is the Linear forward y = x * W^T with W stored [out, in].
void spmm_nt(const CsrMatrix& a, const float* b, int64_t n_rows, float* c);

// ---- Masked backward kernels -----------------------------------------------
// The training-mode companions of the forward dispatch: a mask-compacted
// weight makes both the input gradient and the weight gradient sparse. Each
// kernel mirrors the accumulation order (and the zero-operand skips) of the
// dense gemm it replaces, so a masked backward is bitwise identical to the
// dense backward with pruned-coordinate weight gradients zeroed.

/// C[n_rows, a.cols] = B[n_rows, a.rows] * A, A in CSR, B/C dense row-major.
/// Linear backward dX = dY * W: pruned weight columns contribute nothing.
void spmm_dn(const CsrMatrix& a, const float* b, int64_t n_rows, float* c);

/// C[a.cols, n] = A^T * B[a.rows, n], A in CSR, B/C dense row-major.
/// Conv2d backward dcols = W^T * dY. Serial scatter (rows of C are shared
/// across CSR rows): do not wrap in parallel_for.
void spmm_tn(const CsrMatrix& a, const float* b, int64_t n, float* c);

/// Weight-gradient accumulation restricted to the structure of `s` (dot
/// form): for every structure entry (i, j),
///   grad[i * s.cols + j] += sum_t a[i, t] * b[j, t]
/// with a dense [s.rows, n] and b dense [s.cols, n]. Conv2d backward
/// dW += dY * cols^T, skipping pruned coordinates.
void masked_grad_dot(const CsrMatrix& s, const float* a, const float* b, int64_t n, float* grad);

/// Weight-gradient accumulation restricted to the structure of `s`
/// (transposed form): for every structure entry (i, j),
///   grad[i * s.cols + j] += sum_r a[r, i] * b[r, j]
/// with a dense [n, s.rows] and b dense [n, s.cols]. Linear backward
/// dW += dY^T * X, skipping pruned coordinates.
void masked_grad_tn(const CsrMatrix& s, const float* a, const float* b, int64_t n, float* grad);

}  // namespace fedtiny::sparse
