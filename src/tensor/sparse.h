// CSR sparse matrices and the sparse kernels behind the nn-layer sparse
// forward dispatch (Linear / Conv2d at low mask density).
//
// Every kernel below dispatches on the process-wide kernel engine mode
// (tensor/kernels.h, FEDTINY_KERNELS=reference|fast).
//
// Numerical contract (reference mode): every kernel accumulates along
// ascending column index, exactly the order in which the dense kernels in
// tensor/ops.cpp visit the same coordinates while skipping stored zeros.
// Because adding a zero term is exact in IEEE float, a reference-mode CSR
// forward over a masked weight is therefore bitwise identical to the
// reference-mode dense forward over the same weight with masked entries
// stored as zeros — the dense path doubles as an oracle in tests. Fast mode
// reassociates the sums (blocked, multi-accumulator): still deterministic
// across runs and worker counts, but only tolerance-close to reference.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace fedtiny::sparse {

/// Compressed-sparse-row float32 matrix.
struct CsrMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<int64_t> row_ptr;  // rows + 1 entries
  std::vector<int32_t> col_idx;  // nnz entries, ascending within each row
  std::vector<float> values;     // nnz entries

  // Fan-in-major (column-panel) index for the fast spmm_nt / spmm_dn kernels:
  // panel p covers columns [p*panel_width, (p+1)*panel_width), and row i's
  // entries inside panel p sit at positions
  //   [panel_ptr[i*(num_panels()+1) + p], panel_ptr[i*(num_panels()+1) + p+1])
  // of col_idx/values. The panel loop confines the dense-operand gathers and
  // scatters of those kernels to one cache-resident column window at a time.
  // Structure-only (refresh_values leaves it valid); built via build_panels()
  // by the consumers whose kernels read it (Linear::install_sparse — the
  // spmm_nt/spmm_dn dispatch), empty otherwise — kernels fall back to the
  // unpaneled walk when absent. Deliberately NOT built by csr_from_mask:
  // matrices consumed by the streaming kernels (conv spmm/masked_grad_dot)
  // measured slower with the extra index resident.
  int64_t panel_width = 0;
  std::vector<int64_t> panel_ptr;  // rows * (num_panels + 1) entries

  // Cached transpose for the fast spmm_tn (A^T * B): structure + values of
  // A^T plus the permutation mapping each transposed entry back to its
  // original position (tr_values[p] == values[tr_perm[p]]). Built via
  // build_transpose() by consumers whose backward runs spmm_tn on a stable
  // structure (Conv2d::install_sparse); refresh_values keeps tr_values in
  // sync through tr_perm. Empty => spmm_tn_fast transposes per call.
  std::vector<int64_t> tr_row_ptr;  // cols + 1 entries
  std::vector<int32_t> tr_col_idx;  // nnz entries: original row index, ascending
  std::vector<float> tr_values;     // nnz entries
  std::vector<int64_t> tr_perm;     // nnz entries: transposed -> original entry

  [[nodiscard]] int64_t nnz() const { return static_cast<int64_t>(values.size()); }
  [[nodiscard]] bool empty() const { return rows == 0; }
  [[nodiscard]] int64_t num_panels() const {
    return panel_width > 0 ? (cols + panel_width - 1) / panel_width : 0;
  }
  [[nodiscard]] bool has_panels() const { return !panel_ptr.empty(); }
  [[nodiscard]] bool has_transpose() const { return !tr_row_ptr.empty(); }
  [[nodiscard]] double density() const {
    const int64_t total = rows * cols;
    return total > 0 ? static_cast<double>(nnz()) / static_cast<double>(total) : 0.0;
  }
};

/// Number of non-zero bytes in a mask.
int64_t mask_nnz(std::span<const uint8_t> mask);

/// Kept fraction of a mask; an empty mask counts as fully dense.
double mask_density(std::span<const uint8_t> mask);

/// Compact a dense row-major [rows, cols] matrix to CSR, keeping entries
/// whose mask byte is non-zero. mask.size() must equal rows * cols. Entries
/// that are masked-in but numerically zero are kept: the CSR structure
/// mirrors the mask, not the value pattern, so a weight update never changes
/// the compaction structure within a round.
CsrMatrix csr_from_mask(const float* dense, int64_t rows, int64_t cols,
                        std::span<const uint8_t> mask);

/// Compact keeping the non-zero value pattern (no mask available).
CsrMatrix csr_from_dense(const float* dense, int64_t rows, int64_t cols);

/// Refresh `out.values` from a dense matrix with an unchanged structure
/// (same mask => same col_idx/row_ptr). Cheaper than re-running
/// csr_from_mask when only the values moved.
void refresh_values(CsrMatrix& out, const float* dense);

/// Build the transpose of `src` into `out`'s tr_* arrays (out's primary
/// arrays are untouched; src and out may be the same object). Call on
/// matrices fed to spmm_tn in a loop (Conv2d's masked training backward
/// does); rebuild after structure changes, refresh_values handles value-only
/// updates.
void build_transpose(const CsrMatrix& src, CsrMatrix& out);
inline void build_transpose(CsrMatrix& m) { build_transpose(m, m); }

/// (Re)build the column-panel index with the given panel width (see the
/// CsrMatrix field comment). width <= 0 clears the index. Call on matrices
/// fed to spmm_nt/spmm_dn (Linear does); exposed so tests and benches can
/// force a specific panel geometry.
void build_panels(CsrMatrix& m, int64_t width);

/// Default panel width: 256 columns = 1 KiB of dense operand per panel per
/// batch row, sized so the fast kernels' 8-row batch blocks keep their
/// gather/scatter window L1-resident.
inline constexpr int64_t kDefaultPanelWidth = 256;

/// Scatter to a zeroed dense row-major [rows, cols] buffer.
void csr_to_dense(const CsrMatrix& a, float* dense);

/// C[m, n] = A[m, k] * B[k, n], A in CSR, B/C dense row-major.
/// When accumulate is false C is overwritten, otherwise added into.
/// This is the Conv2d forward: W_csr[out_c, in_c*k*k] * cols.
void spmm(const CsrMatrix& a, const float* b, int64_t n, float* c, bool accumulate = false);

/// y[m] = A[m, k] * x[k].
void spmv(const CsrMatrix& a, const float* x, float* y);

/// C[n_rows, m] = B[n_rows, k] * A[m, k]^T, A in CSR, B/C dense row-major.
/// This is the Linear forward y = x * W^T with W stored [out, in].
void spmm_nt(const CsrMatrix& a, const float* b, int64_t n_rows, float* c);

// ---- Masked backward kernels -----------------------------------------------
// The training-mode companions of the forward dispatch: a mask-compacted
// weight makes both the input gradient and the weight gradient sparse. Each
// kernel mirrors the accumulation order (and the zero-operand skips) of the
// dense gemm it replaces, so a masked backward is bitwise identical to the
// dense backward with pruned-coordinate weight gradients zeroed.

/// C[n_rows, a.cols] = B[n_rows, a.rows] * A, A in CSR, B/C dense row-major.
/// Linear backward dX = dY * W: pruned weight columns contribute nothing.
void spmm_dn(const CsrMatrix& a, const float* b, int64_t n_rows, float* c);

/// C[a.cols, n] = A^T * B[a.rows, n], A in CSR, B/C dense row-major.
/// Conv2d backward dcols = W^T * dY. Serial scatter (rows of C are shared
/// across CSR rows): do not wrap in parallel_for.
void spmm_tn(const CsrMatrix& a, const float* b, int64_t n, float* c);

/// Weight-gradient accumulation restricted to the structure of `s` (dot
/// form): for every structure entry (i, j),
///   grad[i * s.cols + j] += sum_t a[i, t] * b[j, t]
/// with a dense [s.rows, n] and b dense [s.cols, n]. Conv2d backward
/// dW += dY * cols^T, skipping pruned coordinates.
void masked_grad_dot(const CsrMatrix& s, const float* a, const float* b, int64_t n, float* grad);

/// Weight-gradient accumulation restricted to the structure of `s`
/// (transposed form): for every structure entry (i, j),
///   grad[i * s.cols + j] += sum_r a[r, i] * b[r, j]
/// with a dense [n, s.rows] and b dense [n, s.cols]. Linear backward
/// dW += dY^T * X, skipping pruned coordinates.
void masked_grad_tn(const CsrMatrix& s, const float* a, const float* b, int64_t n, float* grad);

}  // namespace fedtiny::sparse
