// Kernel engine: two selectable implementations of every hot math kernel.
//
//   reference — the scalar loops the repo has shipped since PR 1/2, kept
//               verbatim. Accumulation order matches the dense zero-skipping
//               oracle exactly, so reference-mode sparse kernels are bitwise
//               identical to the dense forward/backward over the same masked
//               weight. This is the mode every bitwise-oracle test pins.
//   fast      — register-blocked / multi-accumulator rewrites (the default).
//               Blocking order is a fixed compile-time constant, so fast
//               results are deterministic across runs, thread counts, and
//               worker counts — but the reassociated accumulation drifts
//               from reference within a tolerance bounded by the parity
//               tests (tests/tensor/test_kernels.cpp).
//
// Selection is process-wide: FEDTINY_KERNELS=reference|fast seeds the mode
// at first use, set_mode() overrides (harness::Experiment::run applies the
// RunSpec::kernels knob through it). The public entry points stay
// ops::gemm / sparse::spmm etc. — they dispatch on mode(); call the
// *_reference / *_fast functions below only from benches and tests that
// need a specific implementation regardless of the process mode.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "tensor/sparse_fwd.h"

namespace fedtiny::kernels {

enum class Mode : int { kReference = 0, kFast = 1 };

/// Parse "reference"/"fast" (anything else falls back to `fallback`).
Mode mode_from_name(const char* name, Mode fallback = Mode::kFast);
/// Parse "reference"/"fast"; anything else throws std::invalid_argument.
/// The single validation point for user-supplied mode strings (RunSpec
/// knob, run_all batch pins).
Mode parse_mode(const char* name);
const char* mode_name(Mode mode);

namespace detail {
/// FEDTINY_KERNELS seed: unset -> fast; unrecognized values warn on stderr
/// and fall back to fast (a typo must not silently pose as a mode choice).
Mode mode_from_env();

inline std::atomic<int>& mode_slot() {
  static std::atomic<int> value{static_cast<int>(mode_from_env())};
  return value;
}
}  // namespace detail

/// Process-wide kernel implementation selection (FEDTINY_KERNELS seeds it).
inline Mode mode() { return static_cast<Mode>(detail::mode_slot().load(std::memory_order_relaxed)); }
inline void set_mode(Mode m) {
  detail::mode_slot().store(static_cast<int>(m), std::memory_order_relaxed);
}

/// RAII mode pin for tests and benches; restores the previous mode. The mode
/// is process-wide, so do not interleave scoped pins across threads.
class ScopedMode {
 public:
  explicit ScopedMode(Mode m) : previous_(mode()) { set_mode(m); }
  ~ScopedMode() { set_mode(previous_); }
  ScopedMode(const ScopedMode&) = delete;
  ScopedMode& operator=(const ScopedMode&) = delete;

 private:
  Mode previous_;
};

// ---- Dense GEMM ------------------------------------------------------------
// C[m,n] = alpha * op(A) * op(B) + beta * C (see ops::gemm for the layout
// contract). The reference skips zero A operands (masked dense weights ride
// that skip); fast trades the skip for register tiles and unrolled
// multi-accumulator inner loops.

/// Optional fused epilogue applied to every C element as it is written back
/// from the register tile: bias add (per row and/or per column) and a ReLU
/// clamp, saving the separate bias/activation pass over C. Applied after the
/// alpha/beta blend, so it is meant for beta == 0 forward-style calls; biases
/// whose pointer is null are not applied at all (no "+ 0.0f" that could flip
/// a -0.0 output). The epilogue is a property of the *call*, not the mode:
/// reference-mode dispatch applies it as an ordered post-pass over C
/// (gemm_epilogue_apply), bitwise-identical to the separate bias loop the
/// layers used before.
struct GemmEpilogue {
  const float* row_bias = nullptr;  // length m: added to every element of C row i
  const float* col_bias = nullptr;  // length n: added to every element of C column j
  bool relu = false;                // clamp at zero, applied after the bias adds
  /// Optional activation mask recorded at write-back when relu is set:
  /// relu_mask[i*n + j] = 1 iff the pre-clamp value was > 0 (the exact
  /// predicate nn::ReLU stores), 0 otherwise. Lets a fused conv+ReLU save
  /// the backward mask for free instead of re-running a separate ReLU pass.
  /// Ignored unless relu is true.
  uint8_t* relu_mask = nullptr;
  [[nodiscard]] bool active() const {
    return row_bias != nullptr || col_bias != nullptr || relu;
  }
};

/// Ordered post-pass form of the epilogue (row-major, ascending i then j) —
/// the reference-mode implementation, and the fallback for fast paths that
/// accumulate in place instead of staging a register tile.
void gemm_epilogue_apply(int64_t m, int64_t n, float* c, const GemmEpilogue& epi);

void gemm_reference(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha,
                    const float* a, const float* b, float beta, float* c);
void gemm_fast(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha,
               const float* a, const float* b, float beta, float* c);
/// gemm_fast with a fused epilogue on the write-back of each output tile.
void gemm_fast_ex(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha,
                  const float* a, const float* b, float beta, float* c, const GemmEpilogue& epi);

/// Bytes currently held by the fast GEMM's per-thread pack scratch, summed
/// across all threads that ever packed. The shared-pack engine caps each
/// thread's arena at one L2 panel, so this must plateau after the first call
/// of a given size instead of growing with lane count x matrix size (the
/// PR 4 regression this probe guards).
int64_t scratch_bytes();

// ---- im2col / col2im -------------------------------------------------------
// Patch expansion and its scatter-add inverse (see ops::im2col for the layout
// contract). `out_ld` / `cols_ld` is the column-buffer row pitch: out_h*out_w
// for a standalone per-sample buffer, batch*out_h*out_w when the caller packs
// per-sample blocks side by side in one [fan_in, batch*out_hw] workspace (the
// batched conv pipeline). The reference implementations are the PR 1 scalar
// loops verbatim modulo that pitch generalization (pure address arithmetic).
// Unlike the arithmetic kernels, fast here is *bitwise-equal* to reference:
// im2col only moves data, and col2im's fast variant preserves the per-output-
// element (kh, kw, oh) accumulation order while vectorizing the disjoint
// inner width loop.

void im2col_reference(const float* in, int64_t channels, int64_t height, int64_t width,
                      int64_t kernel_h, int64_t kernel_w, int64_t stride, int64_t pad, float* out,
                      int64_t out_ld);
void im2col_fast(const float* in, int64_t channels, int64_t height, int64_t width,
                 int64_t kernel_h, int64_t kernel_w, int64_t stride, int64_t pad, float* out,
                 int64_t out_ld);

void col2im_reference(const float* cols, int64_t channels, int64_t height, int64_t width,
                      int64_t kernel_h, int64_t kernel_w, int64_t stride, int64_t pad, float* out,
                      int64_t cols_ld);
void col2im_fast(const float* cols, int64_t channels, int64_t height, int64_t width,
                 int64_t kernel_h, int64_t kernel_w, int64_t stride, int64_t pad, float* out,
                 int64_t cols_ld);

// ---- Batched conv data movement --------------------------------------------
// The whole-batch movers of the batched conv pipeline. `in` / `out` hold
// `batch` contiguous [channels, height, width] samples; the column buffer is
// one [channels*kernel_h*kernel_w, batch*out_h*out_w] workspace with sample
// i's block starting at column i*out_h*out_w. Reference loops the per-sample
// reference movers serially; fast spreads (sample x row) / (sample x channel)
// items over kernel-pool lanes. Both orderings write every output element
// exactly once from the same inputs (col2im accumulates only within one
// (sample, channel) item), so fast is bitwise-equal to reference at any lane
// count — same contract as the per-sample movers above.

void im2col_batched_reference(const float* in, int64_t batch, int64_t channels, int64_t height,
                              int64_t width, int64_t kernel_h, int64_t kernel_w, int64_t stride,
                              int64_t pad, float* cols);
void im2col_batched_fast(const float* in, int64_t batch, int64_t channels, int64_t height,
                         int64_t width, int64_t kernel_h, int64_t kernel_w, int64_t stride,
                         int64_t pad, float* cols);

void col2im_batched_reference(const float* cols, int64_t batch, int64_t channels, int64_t height,
                              int64_t width, int64_t kernel_h, int64_t kernel_w, int64_t stride,
                              int64_t pad, float* out);
void col2im_batched_fast(const float* cols, int64_t batch, int64_t channels, int64_t height,
                         int64_t width, int64_t kernel_h, int64_t kernel_w, int64_t stride,
                         int64_t pad, float* out);

// ---- Batched layout permutes -----------------------------------------------
// Transpose between the batched GEMM staging layout [rows, batch*cols]
// (sample i's block at column offset i*cols of each row) and the per-sample
// layout [batch, rows, cols]. Pure row-sized memcpys — bitwise-trivially
// deterministic — threaded over (sample x row) items, with a non-temporal
// streaming store variant engaged for large buffers whose page-strided
// destination rows defeat the hardware prefetcher.

/// staging [rows, batch*cols] -> samples [batch, rows, cols].
void permute_to_samples(const float* staging, int64_t rows, int64_t batch, int64_t cols,
                        float* samples);
/// samples [batch, rows, cols] -> staging [rows, batch*cols].
void permute_to_staging(const float* samples, int64_t rows, int64_t batch, int64_t cols,
                        float* staging);

// ---- CSR kernels -----------------------------------------------------------
// Same signatures as the sparse:: entry points that dispatch to them.

void spmm_reference(const sparse::CsrMatrix& a, const float* b, int64_t n, float* c,
                    bool accumulate);
void spmm_fast(const sparse::CsrMatrix& a, const float* b, int64_t n, float* c, bool accumulate);

void spmm_nt_reference(const sparse::CsrMatrix& a, const float* b, int64_t n_rows, float* c);
void spmm_nt_fast(const sparse::CsrMatrix& a, const float* b, int64_t n_rows, float* c);

void spmm_dn_reference(const sparse::CsrMatrix& a, const float* b, int64_t n_rows, float* c);
void spmm_dn_fast(const sparse::CsrMatrix& a, const float* b, int64_t n_rows, float* c);

void spmm_tn_reference(const sparse::CsrMatrix& a, const float* b, int64_t n, float* c);
void spmm_tn_fast(const sparse::CsrMatrix& a, const float* b, int64_t n, float* c);

void masked_grad_dot_reference(const sparse::CsrMatrix& s, const float* a, const float* b,
                               int64_t n, float* grad);
void masked_grad_dot_fast(const sparse::CsrMatrix& s, const float* a, const float* b, int64_t n,
                          float* grad);

void masked_grad_tn_reference(const sparse::CsrMatrix& s, const float* a, const float* b, int64_t n,
                              float* grad);
void masked_grad_tn_fast(const sparse::CsrMatrix& s, const float* a, const float* b, int64_t n,
                         float* grad);

}  // namespace fedtiny::kernels
