// Deterministic pseudo-random number generator (PCG32) with convenience
// samplers. A fixed in-repo implementation (rather than std::mt19937 +
// std::normal_distribution) guarantees bit-identical experiment replays
// across standard-library implementations.
#pragma once

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

namespace fedtiny {

/// SplitMix64 finalizer: a cheap, well-mixing 64-bit permutation.
inline uint64_t mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Counter-based seed derivation for independent sub-streams, e.g.
/// derive_seed(seed, round, client) for one client's local-training RNG.
/// Depending only on the counters (never on execution order), the derived
/// streams make parallel schedules bitwise-reproducible at any worker count.
inline uint64_t derive_seed(uint64_t seed, uint64_t a, uint64_t b) {
  return mix64(mix64(mix64(seed + 0x9e3779b97f4a7c15ULL) + a) + b);
}

/// PCG32 generator. Cheap to copy; every component that needs randomness
/// owns its own seeded instance so experiments are order-independent.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    next_u32();
    state_ += seed;
    next_u32();
  }

  /// Uniform 32-bit integer.
  uint32_t next_u32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform in [0, 1).
  double uniform() { return static_cast<double>(next_u32()) * (1.0 / 4294967296.0); }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) { return lo + static_cast<float>(uniform()) * (hi - lo); }

  /// Uniform integer in [0, n). n must be > 0.
  int64_t uniform_int(int64_t n) {
    return static_cast<int64_t>(uniform() * static_cast<double>(n));
  }

  /// Standard normal via Box-Muller.
  float normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-12) u1 = 1e-12;
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cached_ = static_cast<float>(r * std::sin(theta));
    has_cached_ = true;
    return static_cast<float>(r * std::cos(theta));
  }

  float normal(float mean, float stddev) { return mean + stddev * normal(); }

  /// Fisher-Yates permutation of [0, n).
  std::vector<int64_t> permutation(int64_t n) {
    std::vector<int64_t> p(static_cast<size_t>(n));
    std::iota(p.begin(), p.end(), 0);
    for (int64_t i = n - 1; i > 0; --i) {
      int64_t j = uniform_int(i + 1);
      std::swap(p[static_cast<size_t>(i)], p[static_cast<size_t>(j)]);
    }
    return p;
  }

  /// Sample from a Dirichlet distribution with symmetric concentration alpha.
  /// Uses the Gamma(alpha, 1) / sum construction with Marsaglia-Tsang sampling.
  std::vector<double> dirichlet(double alpha, int k);

 private:
  /// Gamma(shape, 1) sampler (Marsaglia-Tsang, with boost for shape < 1).
  double gamma(double shape);

  uint64_t state_ = 0;
  uint64_t inc_ = 0;
  float cached_ = 0.0f;
  bool has_cached_ = false;
};

}  // namespace fedtiny
