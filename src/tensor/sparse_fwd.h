// Forward declaration of the CSR matrix type, for headers (tensor/kernels.h)
// that only pass it by reference.
#pragma once

namespace fedtiny::sparse {
struct CsrMatrix;
}  // namespace fedtiny::sparse
