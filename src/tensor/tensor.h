// Dense row-major float tensor used throughout the FedTiny substrate.
//
// The tensor is deliberately minimal: fixed dtype (float32), owning storage,
// rank <= 4 in practice (N, C, H, W). All neural-network layers, pruning
// masks, and federated parameter vectors are built on top of this type.
#pragma once

#include <cassert>
#include <cstdint>
#include <numeric>
#include <span>
#include <string>
#include <vector>

namespace fedtiny {

/// Owning, contiguous, row-major float32 tensor.
class Tensor {
 public:
  Tensor() = default;

  /// Construct a zero-initialized tensor with the given shape.
  explicit Tensor(std::vector<int64_t> shape)
      : shape_(std::move(shape)), data_(compute_numel(shape_), 0.0f) {}

  /// Construct with shape and constant fill value.
  Tensor(std::vector<int64_t> shape, float fill_value)
      : shape_(std::move(shape)), data_(compute_numel(shape_), fill_value) {}

  static Tensor zeros(std::vector<int64_t> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<int64_t> shape, float v) { return Tensor(std::move(shape), v); }
  static Tensor ones(std::vector<int64_t> shape) { return Tensor(std::move(shape), 1.0f); }

  /// Build a 1-D tensor from explicit values (test convenience).
  static Tensor from_vector(std::vector<float> values) {
    Tensor t;
    t.shape_ = {static_cast<int64_t>(values.size())};
    t.data_ = std::move(values);
    return t;
  }

  [[nodiscard]] const std::vector<int64_t>& shape() const { return shape_; }
  [[nodiscard]] int rank() const { return static_cast<int>(shape_.size()); }
  [[nodiscard]] int64_t dim(int i) const {
    assert(i >= 0 && i < rank());
    return shape_[static_cast<size_t>(i)];
  }
  [[nodiscard]] int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  [[nodiscard]] std::span<float> flat() { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  float& operator[](int64_t i) {
    assert(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }
  float operator[](int64_t i) const {
    assert(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }

  /// 2-D indexed access (rows, cols).
  float& at2(int64_t i, int64_t j) {
    assert(rank() == 2);
    return data_[static_cast<size_t>(i * shape_[1] + j)];
  }
  float at2(int64_t i, int64_t j) const {
    assert(rank() == 2);
    return data_[static_cast<size_t>(i * shape_[1] + j)];
  }

  /// 4-D indexed access (n, c, h, w).
  float& at4(int64_t n, int64_t c, int64_t h, int64_t w) {
    assert(rank() == 4);
    return data_[static_cast<size_t>(((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }
  float at4(int64_t n, int64_t c, int64_t h, int64_t w) const {
    assert(rank() == 4);
    return data_[static_cast<size_t>(((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void zero() { fill(0.0f); }

  /// Reinterpret the shape; total element count must be preserved.
  void reshape(std::vector<int64_t> new_shape) {
    assert(compute_numel(new_shape) == numel());
    shape_ = std::move(new_shape);
  }

  /// True if both tensors have identical shape.
  [[nodiscard]] bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Human-readable shape, e.g. "[64, 3, 3, 3]".
  [[nodiscard]] std::string shape_string() const;

  static int64_t compute_numel(const std::vector<int64_t>& shape) {
    int64_t n = 1;
    for (int64_t d : shape) {
      assert(d >= 0);
      n *= d;
    }
    return shape.empty() ? 0 : n;
  }

 private:
  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

}  // namespace fedtiny
