#include "tensor/quant.h"

#include <algorithm>
#include <array>
#include <cstring>

// Same dispatch idiom as kernels_fast.cpp: scalar loops compiled once per
// ISA via target_clones (the loops below auto-vectorize), plus an
// explicitly-SIMD SSSE3 shuffle decoder for the varint stream behind a
// runtime __builtin_cpu_supports check.
#if defined(__x86_64__) && defined(__ELF__) && defined(__has_attribute)
#if __has_attribute(target_clones)
#define FEDTINY_QUANT_CLONES \
  __attribute__((target_clones("avx512f", "avx2", "default")))
#endif
#if __has_attribute(target)
#define FEDTINY_QUANT_HAVE_SSSE3 1
#include <immintrin.h>
#endif
#endif
#ifndef FEDTINY_QUANT_CLONES
#define FEDTINY_QUANT_CLONES
#endif

namespace fedtiny {
namespace quant {

namespace {

// ---- value quantization ----------------------------------------------

FEDTINY_QUANT_CLONES
void minmax_span(const float* src, std::size_t n, float* out_lo,
                 float* out_hi) {
  float lo = src[0];
  float hi = src[0];
  for (std::size_t i = 1; i < n; ++i) {
    lo = src[i] < lo ? src[i] : lo;
    hi = src[i] > hi ? src[i] : hi;
  }
  *out_lo = lo;
  *out_hi = hi;
}

// code = trunc(t + 0.5): round-half-up, chosen over nearbyint so the
// rounding is independent of the FP environment and identical in every
// clone (add + truncating convert in both scalar and vector code).
FEDTINY_QUANT_CLONES
void encode_u8_span(const float* src, std::size_t n, float lo, float inv,
                    std::uint8_t* codes) {
  for (std::size_t i = 0; i < n; ++i) {
    float t = (src[i] - lo) * inv;
    t = t < 0.0f ? 0.0f : t;
    t = t > 255.0f ? 255.0f : t;
    codes[i] = static_cast<std::uint8_t>(static_cast<int>(t + 0.5f));
  }
}

FEDTINY_QUANT_CLONES
void decode_u8_span(const std::uint8_t* codes, std::size_t n, float lo,
                    float scale, float* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = lo + static_cast<float>(codes[i]) * scale;
  }
}

FEDTINY_QUANT_CLONES
void decode_u4_span(const std::uint8_t* nibbles, std::size_t n, float lo,
                    float scale, float* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = lo + static_cast<float>(nibbles[i]) * scale;
  }
}

// ---- varint (StreamVByte 4-lane layout) ------------------------------

inline std::uint8_t byte_len_u32(std::uint32_t v) {
  if (v < (1u << 8)) return 1;
  if (v < (1u << 16)) return 2;
  if (v < (1u << 24)) return 3;
  return 4;
}

#ifdef FEDTINY_QUANT_HAVE_SSSE3
// For each control byte: a 16-byte pshufb pattern gathering the four
// variable-length lanes into four u32 slots, and the total data length.
struct SvbTables {
  alignas(16) std::uint8_t shuffle[256][16];
  std::uint8_t len[256];
};

constexpr SvbTables make_svb_tables() {
  SvbTables t{};
  for (int c = 0; c < 256; ++c) {
    int off = 0;
    for (int lane = 0; lane < 4; ++lane) {
      const int len = ((c >> (2 * lane)) & 3) + 1;
      for (int b = 0; b < 4; ++b) {
        t.shuffle[c][lane * 4 + b] =
            b < len ? static_cast<std::uint8_t>(off + b) : 0xFF;
      }
      off += len;
    }
    t.len[c] = static_cast<std::uint8_t>(off);
  }
  return t;
}

constexpr SvbTables kSvb = make_svb_tables();

// Decodes full quads while at least 16 data bytes remain (the unaligned
// 16-byte load may overread past the current quad but never past
// data_end). Returns the number of quads decoded and advances *data.
__attribute__((target("ssse3"))) std::size_t svb_decode_quads_ssse3(
    const std::uint8_t* ctrl, std::size_t quads, const std::uint8_t** data,
    const std::uint8_t* data_end, std::uint32_t* out) {
  const std::uint8_t* p = *data;
  std::size_t q = 0;
  for (; q < quads; ++q) {
    const std::uint8_t c = ctrl[q];
    if (static_cast<std::size_t>(data_end - p) < 16) break;
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m128i shuf = _mm_load_si128(
        reinterpret_cast<const __m128i*>(kSvb.shuffle[c]));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 4 * q),
                     _mm_shuffle_epi8(raw, shuf));
    p += kSvb.len[c];
  }
  *data = p;
  return q;
}
#endif  // FEDTINY_QUANT_HAVE_SSSE3

}  // namespace

void compute_chunk_params(const float* src, std::size_t n, std::size_t chunk,
                          int qmax, ChunkParams* params) {
  const std::size_t chunks = chunk_count(n, chunk);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t len = std::min(chunk, n - begin);
    float lo = 0.0f;
    float hi = 0.0f;
    minmax_span(src + begin, len, &lo, &hi);
    params[c].lo = lo;
    const float range = hi - lo;
    params[c].scale = range > 0.0f ? range / static_cast<float>(qmax) : 0.0f;
  }
}

void encode_u8(const float* src, std::size_t n, std::size_t chunk,
               const ChunkParams* params, std::uint8_t* codes) {
  const std::size_t chunks = chunk_count(n, chunk);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t len = std::min(chunk, n - begin);
    if (params[c].scale == 0.0f) {
      std::memset(codes + begin, 0, len);
      continue;
    }
    encode_u8_span(src + begin, len, params[c].lo, 1.0f / params[c].scale,
                   codes + begin);
  }
}

void decode_u8(const std::uint8_t* codes, std::size_t n, std::size_t chunk,
               const ChunkParams* params, float* dst) {
  const std::size_t chunks = chunk_count(n, chunk);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t len = std::min(chunk, n - begin);
    decode_u8_span(codes + begin, len, params[c].lo, params[c].scale,
                   dst + begin);
  }
}

void encode_u4(const float* src, std::size_t n, std::size_t chunk,
               const ChunkParams* params, const std::uint32_t* rand,
               std::uint8_t* codes) {
  std::memset(codes, 0, packed_u4_bytes(n));
  const std::size_t chunks = chunk_count(n, chunk);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t len = std::min(chunk, n - begin);
    if (params[c].scale == 0.0f) continue;
    const float lo = params[c].lo;
    const float inv = 1.0f / params[c].scale;
    for (std::size_t i = 0; i < len; ++i) {
      const std::size_t idx = begin + i;
      float t = (src[idx] - lo) * inv;
      t = t < 0.0f ? 0.0f : t;
      t = t > 15.0f ? 15.0f : t;
      int q = static_cast<int>(t);  // t >= 0: truncation == floor
      const float frac = t - static_cast<float>(q);
      // Stochastic rounding: P(up) == frac, from the caller's u32 stream.
      const float u =
          static_cast<float>(rand[idx]) * (1.0f / 4294967296.0f);
      q += frac > u ? 1 : 0;
      q = q > 15 ? 15 : q;
      codes[idx / 2] |= static_cast<std::uint8_t>(q) << ((idx & 1) * 4);
    }
  }
}

void decode_u4(const std::uint8_t* codes, std::size_t n, std::size_t chunk,
               const ChunkParams* params, float* dst) {
  // Unpack nibbles once, then decode spans with the vectorizable kernel.
  std::vector<std::uint8_t> nibbles(n);
  for (std::size_t i = 0; i < n; ++i) {
    nibbles[i] = (codes[i / 2] >> ((i & 1) * 4)) & 0x0F;
  }
  const std::size_t chunks = chunk_count(n, chunk);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t len = std::min(chunk, n - begin);
    decode_u4_span(nibbles.data() + begin, len, params[c].lo,
                   params[c].scale, dst + begin);
  }
}

std::size_t svb_max_bytes(std::size_t n) {
  return (n + 3) / 4 + 4 * n;
}

std::size_t svb_encode(const std::uint32_t* in, std::size_t n,
                       std::uint8_t* out) {
  if (n == 0) return 0;
  const std::size_t ctrl_bytes = (n + 3) / 4;
  std::uint8_t* ctrl = out;
  std::uint8_t* data = out + ctrl_bytes;
  std::memset(ctrl, 0, ctrl_bytes);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t v = in[i];
    const std::uint8_t len = byte_len_u32(v);
    ctrl[i / 4] |= static_cast<std::uint8_t>(len - 1) << ((i & 3) * 2);
    std::memcpy(data, &v, len);  // little-endian low bytes
    data += len;
  }
  return static_cast<std::size_t>(data - out);
}

bool svb_decode(const std::uint8_t* buf, std::size_t len, std::uint32_t* out,
                std::size_t n) {
  const std::size_t ctrl_bytes = (n + 3) / 4;
  if (len < ctrl_bytes) return false;
  const std::uint8_t* ctrl = buf;
  const std::uint8_t* data = buf + ctrl_bytes;
  const std::uint8_t* end = buf + len;
  std::size_t i = 0;

#ifdef FEDTINY_QUANT_HAVE_SSSE3
  if (__builtin_cpu_supports("ssse3")) {
    const std::size_t done =
        svb_decode_quads_ssse3(ctrl, n / 4, &data, end, out);
    i = 4 * done;
  }
#endif

  for (; i < n; ++i) {
    const std::size_t vlen =
        static_cast<std::size_t>((ctrl[i / 4] >> ((i & 3) * 2)) & 3) + 1;
    if (static_cast<std::size_t>(end - data) < vlen) return false;
    std::uint32_t v = 0;
    std::memcpy(&v, data, vlen);
    out[i] = v;
    data += vlen;
  }
  // Exact consumption: a trailing-garbage or corrupt-length buffer fails.
  return data == end;
}

}  // namespace quant
}  // namespace fedtiny
