#include "tensor/ops.h"

#include <cmath>
#include <cstring>

#include "tensor/kernels.h"
#include "tensor/parallel.h"

namespace fedtiny::ops {

void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha, const float* a,
          const float* b, float beta, float* c) {
  // Row-major. Leading dims follow the *stored* layout:
  //   !trans_a: a is [m,k]; trans_a: a is [k,m].
  //   !trans_b: b is [k,n]; trans_b: b is [n,k].
  // Implementation lives in the kernel engine (tensor/kernels.h).
  if (kernels::mode() == kernels::Mode::kFast) {
    kernels::gemm_fast(trans_a, trans_b, m, n, k, alpha, a, b, beta, c);
  } else {
    kernels::gemm_reference(trans_a, trans_b, m, n, k, alpha, a, b, beta, c);
  }
}

void im2col(const float* in, int64_t channels, int64_t height, int64_t width, int64_t kernel_h,
            int64_t kernel_w, int64_t stride, int64_t pad, float* out) {
  const int64_t out_h = conv_out_size(height, kernel_h, stride, pad);
  const int64_t out_w = conv_out_size(width, kernel_w, stride, pad);
  const int64_t col_rows = channels * kernel_h * kernel_w;
  parallel_for(col_rows, [&](int64_t row) {
    const int64_t c = row / (kernel_h * kernel_w);
    const int64_t rem = row % (kernel_h * kernel_w);
    const int64_t kh = rem / kernel_w;
    const int64_t kw = rem % kernel_w;
    float* out_row = out + row * out_h * out_w;
    const float* in_c = in + c * height * width;
    for (int64_t oh = 0; oh < out_h; ++oh) {
      const int64_t ih = oh * stride - pad + kh;
      if (ih < 0 || ih >= height) {
        std::memset(out_row + oh * out_w, 0, static_cast<size_t>(out_w) * sizeof(float));
        continue;
      }
      const float* in_row = in_c + ih * width;
      for (int64_t ow = 0; ow < out_w; ++ow) {
        const int64_t iw = ow * stride - pad + kw;
        out_row[oh * out_w + ow] = (iw >= 0 && iw < width) ? in_row[iw] : 0.0f;
      }
    }
  });
}

void col2im(const float* cols, int64_t channels, int64_t height, int64_t width, int64_t kernel_h,
            int64_t kernel_w, int64_t stride, int64_t pad, float* out) {
  const int64_t out_h = conv_out_size(height, kernel_h, stride, pad);
  const int64_t out_w = conv_out_size(width, kernel_w, stride, pad);
  // Parallel over channels: each channel's scatter targets are disjoint.
  parallel_for(channels, [&](int64_t c) {
    float* out_c = out + c * height * width;
    for (int64_t kh = 0; kh < kernel_h; ++kh) {
      for (int64_t kw = 0; kw < kernel_w; ++kw) {
        const int64_t row = (c * kernel_h + kh) * kernel_w + kw;
        const float* col_row = cols + row * out_h * out_w;
        for (int64_t oh = 0; oh < out_h; ++oh) {
          const int64_t ih = oh * stride - pad + kh;
          if (ih < 0 || ih >= height) continue;
          float* out_row = out_c + ih * width;
          for (int64_t ow = 0; ow < out_w; ++ow) {
            const int64_t iw = ow * stride - pad + kw;
            if (iw >= 0 && iw < width) out_row[iw] += col_row[oh * out_w + ow];
          }
        }
      }
    }
  });
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  const size_t n = std::min(x.size(), y.size());
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void apply_mask(std::span<float> x, std::span<const uint8_t> mask) {
  const size_t n = std::min(x.size(), mask.size());
  for (size_t i = 0; i < n; ++i) {
    if (mask[i] == 0) x[i] = 0.0f;
  }
}

double sum(std::span<const float> x) {
  double s = 0.0;
  for (float v : x) s += v;
  return s;
}

double l2_norm(std::span<const float> x) {
  double s = 0.0;
  for (float v : x) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

}  // namespace fedtiny::ops
