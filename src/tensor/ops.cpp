#include "tensor/ops.h"

#include <cmath>
#include <cstring>

#include "tensor/kernels.h"
#include "tensor/parallel.h"

namespace fedtiny::ops {

void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha, const float* a,
          const float* b, float beta, float* c) {
  // Row-major. Leading dims follow the *stored* layout:
  //   !trans_a: a is [m,k]; trans_a: a is [k,m].
  //   !trans_b: b is [k,n]; trans_b: b is [n,k].
  // Implementation lives in the kernel engine (tensor/kernels.h).
  if (kernels::mode() == kernels::Mode::kFast) {
    kernels::gemm_fast(trans_a, trans_b, m, n, k, alpha, a, b, beta, c);
  } else {
    kernels::gemm_reference(trans_a, trans_b, m, n, k, alpha, a, b, beta, c);
  }
}

void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha,
          const float* a, const float* b, float beta, float* c,
          const kernels::GemmEpilogue& epi) {
  if (kernels::mode() == kernels::Mode::kFast) {
    kernels::gemm_fast_ex(trans_a, trans_b, m, n, k, alpha, a, b, beta, c, epi);
  } else {
    kernels::gemm_reference(trans_a, trans_b, m, n, k, alpha, a, b, beta, c);
    kernels::gemm_epilogue_apply(m, n, c, epi);
  }
}

void im2col(const float* in, int64_t channels, int64_t height, int64_t width, int64_t kernel_h,
            int64_t kernel_w, int64_t stride, int64_t pad, float* out) {
  const int64_t out_hw =
      conv_out_size(height, kernel_h, stride, pad) * conv_out_size(width, kernel_w, stride, pad);
  im2col(in, channels, height, width, kernel_h, kernel_w, stride, pad, out, out_hw);
}

void im2col(const float* in, int64_t channels, int64_t height, int64_t width, int64_t kernel_h,
            int64_t kernel_w, int64_t stride, int64_t pad, float* out, int64_t out_ld) {
  // Implementation lives in the kernel engine (tensor/kernels.h). Both modes
  // write identical bits; the split exists so FEDTINY_KERNELS=reference runs
  // only the pinned scalar loops.
  if (kernels::mode() == kernels::Mode::kFast) {
    kernels::im2col_fast(in, channels, height, width, kernel_h, kernel_w, stride, pad, out, out_ld);
  } else {
    kernels::im2col_reference(in, channels, height, width, kernel_h, kernel_w, stride, pad, out,
                              out_ld);
  }
}

void col2im(const float* cols, int64_t channels, int64_t height, int64_t width, int64_t kernel_h,
            int64_t kernel_w, int64_t stride, int64_t pad, float* out) {
  const int64_t out_hw =
      conv_out_size(height, kernel_h, stride, pad) * conv_out_size(width, kernel_w, stride, pad);
  col2im(cols, channels, height, width, kernel_h, kernel_w, stride, pad, out, out_hw);
}

void col2im(const float* cols, int64_t channels, int64_t height, int64_t width, int64_t kernel_h,
            int64_t kernel_w, int64_t stride, int64_t pad, float* out, int64_t cols_ld) {
  if (kernels::mode() == kernels::Mode::kFast) {
    kernels::col2im_fast(cols, channels, height, width, kernel_h, kernel_w, stride, pad, out,
                         cols_ld);
  } else {
    kernels::col2im_reference(cols, channels, height, width, kernel_h, kernel_w, stride, pad, out,
                              cols_ld);
  }
}

void im2col_batched(const float* in, int64_t batch, int64_t channels, int64_t height, int64_t width,
                    int64_t kernel_h, int64_t kernel_w, int64_t stride, int64_t pad, float* cols) {
  if (kernels::mode() == kernels::Mode::kFast) {
    kernels::im2col_batched_fast(in, batch, channels, height, width, kernel_h, kernel_w, stride,
                                 pad, cols);
  } else {
    kernels::im2col_batched_reference(in, batch, channels, height, width, kernel_h, kernel_w,
                                      stride, pad, cols);
  }
}

void col2im_batched(const float* cols, int64_t batch, int64_t channels, int64_t height,
                    int64_t width, int64_t kernel_h, int64_t kernel_w, int64_t stride, int64_t pad,
                    float* out) {
  if (kernels::mode() == kernels::Mode::kFast) {
    kernels::col2im_batched_fast(cols, batch, channels, height, width, kernel_h, kernel_w, stride,
                                 pad, out);
  } else {
    kernels::col2im_batched_reference(cols, batch, channels, height, width, kernel_h, kernel_w,
                                      stride, pad, out);
  }
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  const size_t n = std::min(x.size(), y.size());
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void apply_mask(std::span<float> x, std::span<const uint8_t> mask) {
  const size_t n = std::min(x.size(), mask.size());
  for (size_t i = 0; i < n; ++i) {
    if (mask[i] == 0) x[i] = 0.0f;
  }
}

double sum(std::span<const float> x) {
  double s = 0.0;
  for (float v : x) s += v;
  return s;
}

double l2_norm(std::span<const float> x) {
  double s = 0.0;
  for (float v : x) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

}  // namespace fedtiny::ops
