// Reference kernel implementations: the scalar loops shipped in PR 1/2,
// moved here verbatim. They are the bitwise oracle of the engine — the
// accumulation order of every CSR kernel mirrors the dense gemm's loop with
// its zero-operand skip, so reference-mode sparse results are bitwise
// identical to the dense path over the same masked weight. Do not "improve"
// these loops; tests/tensor/test_kernels.cpp pins them against an inlined
// copy of the original code.
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "tensor/kernels.h"
#include "tensor/parallel.h"
#include "tensor/sparse.h"

namespace fedtiny::kernels {

Mode mode_from_name(const char* name, Mode fallback) {
  if (name == nullptr) return fallback;
  if (std::strcmp(name, "reference") == 0) return Mode::kReference;
  if (std::strcmp(name, "fast") == 0) return Mode::kFast;
  return fallback;
}

Mode parse_mode(const char* name) {
  if (name != nullptr) {
    if (std::strcmp(name, "reference") == 0) return Mode::kReference;
    if (std::strcmp(name, "fast") == 0) return Mode::kFast;
  }
  throw std::invalid_argument("unknown kernels mode: " +
                              std::string(name != nullptr ? name : "(null)"));
}

Mode detail::mode_from_env() {
  const char* env = std::getenv("FEDTINY_KERNELS");
  if (env != nullptr && env[0] != '\0' && std::strcmp(env, "reference") != 0 &&
      std::strcmp(env, "fast") != 0) {
    std::fprintf(stderr, "FEDTINY_KERNELS=%s unrecognized; using \"fast\"\n", env);
  }
  return mode_from_name(env);
}

const char* mode_name(Mode mode) {
  return mode == Mode::kReference ? "reference" : "fast";
}

void gemm_reference(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k, float alpha,
                    const float* a, const float* b, float beta, float* c) {
  // Row-major. Leading dims follow the *stored* layout:
  //   !trans_a: a is [m,k]; trans_a: a is [k,m].
  //   !trans_b: b is [k,n]; trans_b: b is [n,k].
  parallel_for(m, [&](int64_t i) {
    float* crow = c + i * n;
    if (beta == 0.0f) {
      std::memset(crow, 0, static_cast<size_t>(n) * sizeof(float));
    } else if (beta != 1.0f) {
      for (int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    if (trans_b && !trans_a) {
      // Dot-product order: both a-row and b-row are contiguous.
      const float* arow = a + i * k;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float s = 0.0f;
        for (int64_t p = 0; p < k; ++p) s += arow[p] * brow[p];
        crow[j] += alpha * s;
      }
      return;
    }
    for (int64_t p = 0; p < k; ++p) {
      const float av = trans_a ? a[p * m + i] : a[i * k + p];
      if (av == 0.0f) continue;
      const float s = alpha * av;
      if (!trans_b) {
        const float* brow = b + p * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += s * brow[j];
      } else {
        for (int64_t j = 0; j < n; ++j) crow[j] += s * b[j * k + p];
      }
    }
  });
}

void gemm_epilogue_apply(int64_t m, int64_t n, float* c, const GemmEpilogue& epi) {
  if (!epi.active()) return;
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    if (epi.row_bias != nullptr) {
      const float rb = epi.row_bias[i];
      for (int64_t j = 0; j < n; ++j) crow[j] += rb;
    }
    if (epi.col_bias != nullptr) {
      for (int64_t j = 0; j < n; ++j) crow[j] += epi.col_bias[j];
    }
    if (epi.relu) {
      if (epi.relu_mask != nullptr) {
        uint8_t* mrow = epi.relu_mask + i * n;
        for (int64_t j = 0; j < n; ++j) {
          const bool pos = crow[j] > 0.0f;
          mrow[j] = pos ? 1 : 0;
          if (!pos) crow[j] = 0.0f;
        }
      } else {
        for (int64_t j = 0; j < n; ++j) crow[j] = crow[j] > 0.0f ? crow[j] : 0.0f;
      }
    }
  }
}

void im2col_reference(const float* in, int64_t channels, int64_t height, int64_t width,
                      int64_t kernel_h, int64_t kernel_w, int64_t stride, int64_t pad, float* out,
                      int64_t out_ld) {
  // The PR 1 ops::im2col loop verbatim; `out_ld` replaces the implicit
  // out_h*out_w row pitch (address arithmetic only — the values written are
  // unchanged, pinned bitwise by tests/tensor/test_kernels.cpp).
  const int64_t out_h = (height + 2 * pad - kernel_h) / stride + 1;
  const int64_t out_w = (width + 2 * pad - kernel_w) / stride + 1;
  const int64_t col_rows = channels * kernel_h * kernel_w;
  parallel_for(col_rows, [&](int64_t row) {
    const int64_t c = row / (kernel_h * kernel_w);
    const int64_t rem = row % (kernel_h * kernel_w);
    const int64_t kh = rem / kernel_w;
    const int64_t kw = rem % kernel_w;
    float* out_row = out + row * out_ld;
    const float* in_c = in + c * height * width;
    for (int64_t oh = 0; oh < out_h; ++oh) {
      const int64_t ih = oh * stride - pad + kh;
      if (ih < 0 || ih >= height) {
        std::memset(out_row + oh * out_w, 0, static_cast<size_t>(out_w) * sizeof(float));
        continue;
      }
      const float* in_row = in_c + ih * width;
      for (int64_t ow = 0; ow < out_w; ++ow) {
        const int64_t iw = ow * stride - pad + kw;
        out_row[oh * out_w + ow] = (iw >= 0 && iw < width) ? in_row[iw] : 0.0f;
      }
    }
  });
}

void col2im_reference(const float* cols, int64_t channels, int64_t height, int64_t width,
                      int64_t kernel_h, int64_t kernel_w, int64_t stride, int64_t pad, float* out,
                      int64_t cols_ld) {
  // The PR 1 ops::col2im loop verbatim; `cols_ld` replaces the implicit
  // out_h*out_w row pitch (address arithmetic only).
  const int64_t out_h = (height + 2 * pad - kernel_h) / stride + 1;
  const int64_t out_w = (width + 2 * pad - kernel_w) / stride + 1;
  // Parallel over channels: each channel's scatter targets are disjoint.
  parallel_for(channels, [&](int64_t c) {
    float* out_c = out + c * height * width;
    for (int64_t kh = 0; kh < kernel_h; ++kh) {
      for (int64_t kw = 0; kw < kernel_w; ++kw) {
        const int64_t row = (c * kernel_h + kh) * kernel_w + kw;
        const float* col_row = cols + row * cols_ld;
        for (int64_t oh = 0; oh < out_h; ++oh) {
          const int64_t ih = oh * stride - pad + kh;
          if (ih < 0 || ih >= height) continue;
          float* out_row = out_c + ih * width;
          for (int64_t ow = 0; ow < out_w; ++ow) {
            const int64_t iw = ow * stride - pad + kw;
            if (iw >= 0 && iw < width) out_row[iw] += col_row[oh * out_w + ow];
          }
        }
      }
    }
  });
}

void im2col_batched_reference(const float* in, int64_t batch, int64_t channels, int64_t height,
                              int64_t width, int64_t kernel_h, int64_t kernel_w, int64_t stride,
                              int64_t pad, float* cols) {
  // Serial per-sample loop over the pitched single-sample reference mover —
  // the exact PR 4 batched-pipeline staging order.
  const int64_t out_h = (height + 2 * pad - kernel_h) / stride + 1;
  const int64_t out_w = (width + 2 * pad - kernel_w) / stride + 1;
  const int64_t col_cols = out_h * out_w;
  for (int64_t i = 0; i < batch; ++i) {
    im2col_reference(in + i * channels * height * width, channels, height, width, kernel_h,
                     kernel_w, stride, pad, cols + i * col_cols, batch * col_cols);
  }
}

void col2im_batched_reference(const float* cols, int64_t batch, int64_t channels, int64_t height,
                              int64_t width, int64_t kernel_h, int64_t kernel_w, int64_t stride,
                              int64_t pad, float* out) {
  const int64_t out_h = (height + 2 * pad - kernel_h) / stride + 1;
  const int64_t out_w = (width + 2 * pad - kernel_w) / stride + 1;
  const int64_t col_cols = out_h * out_w;
  for (int64_t i = 0; i < batch; ++i) {
    col2im_reference(cols + i * col_cols, channels, height, width, kernel_h, kernel_w, stride, pad,
                     out + i * channels * height * width, batch * col_cols);
  }
}

void spmm_reference(const sparse::CsrMatrix& a, const float* b, int64_t n, float* c,
                    bool accumulate) {
  // Row-of-C parallel: each CSR row touches only its own output row. The
  // inner accumulation visits columns in ascending order, matching the dense
  // gemm's k-loop with zero-skipping (bitwise-identical results).
  parallel_for(a.rows, [&](int64_t i) {
    float* crow = c + i * n;
    if (!accumulate) std::memset(crow, 0, static_cast<size_t>(n) * sizeof(float));
    for (int64_t p = a.row_ptr[static_cast<size_t>(i)]; p < a.row_ptr[static_cast<size_t>(i) + 1];
         ++p) {
      const float v = a.values[static_cast<size_t>(p)];
      const float* brow = b + static_cast<int64_t>(a.col_idx[static_cast<size_t>(p)]) * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += v * brow[j];
    }
  });
}

void spmm_nt_reference(const sparse::CsrMatrix& a, const float* b, int64_t n_rows, float* c) {
  // C[i, j] = <B row i, A row j>; the sparse dot walks A's kept columns in
  // ascending order — same accumulation order as the dense dot over all k.
  parallel_for(n_rows, [&](int64_t i) {
    const float* brow = b + i * a.cols;
    float* crow = c + i * a.rows;
    for (int64_t j = 0; j < a.rows; ++j) {
      float s = 0.0f;
      for (int64_t p = a.row_ptr[static_cast<size_t>(j)];
           p < a.row_ptr[static_cast<size_t>(j) + 1]; ++p) {
        s += a.values[static_cast<size_t>(p)] * brow[a.col_idx[static_cast<size_t>(p)]];
      }
      crow[j] = s;
    }
  });
}

void spmm_dn_reference(const sparse::CsrMatrix& a, const float* b, int64_t n_rows, float* c) {
  // C row i accumulates over CSR rows j in ascending order — the dense
  // gemm(false, false) k-loop, which also skips b[i, j] == 0, so the skip is
  // mirrored here for bitwise agreement.
  parallel_for(n_rows, [&](int64_t i) {
    const float* brow = b + i * a.rows;
    float* crow = c + i * a.cols;
    std::memset(crow, 0, static_cast<size_t>(a.cols) * sizeof(float));
    for (int64_t j = 0; j < a.rows; ++j) {
      const float bv = brow[j];
      if (bv == 0.0f) continue;
      for (int64_t p = a.row_ptr[static_cast<size_t>(j)];
           p < a.row_ptr[static_cast<size_t>(j) + 1]; ++p) {
        crow[a.col_idx[static_cast<size_t>(p)]] += bv * a.values[static_cast<size_t>(p)];
      }
    }
  });
}

void spmm_tn_reference(const sparse::CsrMatrix& a, const float* b, int64_t n, float* c) {
  // Scatter form: every output element (j, t) accumulates over CSR rows i in
  // ascending order, exactly the dense gemm(true, false) k-loop with its
  // zero-operand skip (kept-but-zero values are skipped there too).
  std::memset(c, 0, static_cast<size_t>(a.cols * n) * sizeof(float));
  for (int64_t i = 0; i < a.rows; ++i) {
    const float* brow = b + i * n;
    for (int64_t p = a.row_ptr[static_cast<size_t>(i)]; p < a.row_ptr[static_cast<size_t>(i) + 1];
         ++p) {
      const float v = a.values[static_cast<size_t>(p)];
      if (v == 0.0f) continue;
      float* crow = c + static_cast<int64_t>(a.col_idx[static_cast<size_t>(p)]) * n;
      for (int64_t t = 0; t < n; ++t) crow[t] += v * brow[t];
    }
  }
}

void masked_grad_dot_reference(const sparse::CsrMatrix& s, const float* a, const float* b,
                               int64_t n, float* grad) {
  // Per structure entry: one contiguous dot over t ascending, then a single
  // add into grad — the dense gemm(false, true) dot-product path restricted
  // to the mask's support. Rows of grad are disjoint across CSR rows.
  parallel_for(s.rows, [&](int64_t i) {
    const float* arow = a + i * n;
    float* grow = grad + i * s.cols;
    for (int64_t p = s.row_ptr[static_cast<size_t>(i)]; p < s.row_ptr[static_cast<size_t>(i) + 1];
         ++p) {
      const float* brow = b + static_cast<int64_t>(s.col_idx[static_cast<size_t>(p)]) * n;
      float acc = 0.0f;
      for (int64_t t = 0; t < n; ++t) acc += arow[t] * brow[t];
      grow[s.col_idx[static_cast<size_t>(p)]] += acc;
    }
  });
}

void masked_grad_tn_reference(const sparse::CsrMatrix& s, const float* a, const float* b, int64_t n,
                              float* grad) {
  // Per structure row i: accumulate over samples r ascending, skipping
  // a[r, i] == 0 — the dense gemm(true, false) k-loop order and skip,
  // restricted to the mask's support. Rows of grad are disjoint.
  parallel_for(s.rows, [&](int64_t i) {
    float* grow = grad + i * s.cols;
    for (int64_t r = 0; r < n; ++r) {
      const float av = a[r * s.rows + i];
      if (av == 0.0f) continue;
      const float* brow = b + r * s.cols;
      for (int64_t p = s.row_ptr[static_cast<size_t>(i)];
           p < s.row_ptr[static_cast<size_t>(i) + 1]; ++p) {
        grow[s.col_idx[static_cast<size_t>(p)]] += av * brow[s.col_idx[static_cast<size_t>(p)]];
      }
    }
  });
}

}  // namespace fedtiny::kernels
