#pragma once

// Chunked linear quantization + StreamVByte-style varint index coding.
//
// These are the value/index kernels under fl/codec.*: per-chunk affine
// int8 / 4-bit quantization of float spans, and delta+varint encoding of
// sorted support indices. Everything here is deterministic: int8 uses
// round-half-up (t + 0.5f truncated), 4-bit uses stochastic rounding
// driven by caller-supplied per-value u32 randomness, so the encoded
// bytes are a pure function of (input, params, randomness) regardless of
// thread count or ISA clone selected at runtime.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fedtiny {
namespace quant {

// Affine parameters for one chunk of values: x_hat = lo + code * scale.
struct ChunkParams {
  float lo = 0.0f;
  float scale = 0.0f;
};
static_assert(sizeof(ChunkParams) == 8, "ChunkParams is serialized as-is");

inline std::size_t chunk_count(std::size_t n, std::size_t chunk) {
  return chunk == 0 ? 0 : (n + chunk - 1) / chunk;
}

// Per-chunk min/range params. qmax is the top code (255 for int8, 15 for
// 4-bit). Constant chunks get scale == 0 and encode to code 0 exactly.
void compute_chunk_params(const float* src, std::size_t n, std::size_t chunk,
                          int qmax, ChunkParams* params);

// Linear int8: code = clamp(round_half_up((x - lo) / scale), 0, 255).
void encode_u8(const float* src, std::size_t n, std::size_t chunk,
               const ChunkParams* params, std::uint8_t* codes);
void decode_u8(const std::uint8_t* codes, std::size_t n, std::size_t chunk,
               const ChunkParams* params, float* dst);

// Stochastic 4-bit: code = floor(t) + (frac(t) > u), u ~ U[0,1) from the
// caller's per-value u32 stream (rand[i] * 2^-32). Codes are packed two
// per byte, low nibble first; the last byte of an odd-length span has a
// zero high nibble.
void encode_u4(const float* src, std::size_t n, std::size_t chunk,
               const ChunkParams* params, const std::uint32_t* rand,
               std::uint8_t* codes);
void decode_u4(const std::uint8_t* codes, std::size_t n, std::size_t chunk,
               const ChunkParams* params, float* dst);

inline std::size_t packed_u4_bytes(std::size_t n) { return (n + 1) / 2; }

// StreamVByte-style varint coding of u32 values: a control stream of
// 2-bit byte-length tags (4 tags per control byte) followed by the
// variable-length data bytes. Decoding uses an SSSE3 shuffle fast path
// when the CPU supports it; both paths produce identical bytes.
std::size_t svb_max_bytes(std::size_t n);

// Encodes n values into out (capacity >= svb_max_bytes(n)); returns the
// number of bytes written.
std::size_t svb_encode(const std::uint32_t* in, std::size_t n,
                       std::uint8_t* out);

// Decodes exactly n values from buf[0..len). Returns false on truncated
// input or when the buffer is not consumed exactly (length corruption);
// never reads outside buf[0..len).
bool svb_decode(const std::uint8_t* buf, std::size_t len, std::uint32_t* out,
                std::size_t n);

}  // namespace quant
}  // namespace fedtiny
