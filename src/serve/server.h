// InferenceServer: the embeddable serving core. Ties together the hot-swap
// registries (one per density tier), the micro-batcher, and a small worker
// pool that runs batched forwards on ServableModel snapshots.
//
// Thread accounting: the server's compute threads come out of the same
// process-wide Executor budget the kernel lanes draw from. The first worker
// stands in for the submitting threads' lane (submitters block on futures
// while their requests execute, so they contribute no concurrent compute);
// every additional worker is acquire()d from the budget and released on
// shutdown. A kernel call issued from a worker asks the Executor for lanes
// and simply runs inline when the workers have consumed the budget — total
// live compute threads never exceed 1 + FEDTINY_THREAD_BUDGET (tested).
//
// Publishing: publish() builds the ServableModel outside every lock (the
// expensive part), then installs it with one atomic store. Requests in
// flight on the previous snapshot finish on it; the old snapshot is
// destroyed when they drain (shared_ptr refcount, see registry.h).
//
// Routing: tiers are registered in quality order (densest first). submit()
// with a latency budget picks the highest-quality tier whose served-latency
// EWMA fits the budget; budget <= 0 means "best quality". Tiers without a
// published snapshot are skipped; if nothing fits, the cheapest estimate
// wins (serve *something* within reach rather than refuse).
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "fl/payload.h"
#include "nn/model.h"
#include "serve/batcher.h"
#include "serve/registry.h"
#include "serve/servable.h"
#include "serve/stats.h"

namespace fedtiny::serve {

struct ServerConfig {
  nn::ModelFactory factory;        // architecture every tier checkpoint must fit
  std::vector<std::string> tiers;  // quality order, densest first; >= 1 entry
  int workers = 1;                 // requested batch workers (1 + budget grant cap)
  BatcherConfig batcher;
  float sparse_max_density = 0.5f;
  bool fuse_conv_relu = true;
  int64_t warm_batch = 0;  // pre-size replica workspaces at publish time
};

/// Pure routing rule, unit-testable without a server: `est_ms` are per-tier
/// latency estimates in quality order; <= 0 entries mean "no estimate yet"
/// (optimistically assumed to fit). Returns the first (highest-quality) tier
/// whose estimate fits `budget_ms`, the cheapest-estimate tier when none
/// fits, 0 when budget_ms <= 0 (no constraint -> best quality), -1 on empty.
int route_by_budget(std::span<const double> est_ms, double budget_ms);

class InferenceServer {
 public:
  explicit InferenceServer(ServerConfig config);
  ~InferenceServer();  // shutdown(): drains the queue — never drops requests
  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Install a checkpoint on a tier. Returns the snapshot version (> 0) on
  /// success, 0 when the tier is unknown or the payload/file is rejected.
  uint64_t publish(const std::string& tier, const fl::SparseStatePayload& payload);
  uint64_t publish_checkpoint(const std::string& tier, const std::string& path);

  /// Route by latency budget (ms); budget <= 0 = best quality.
  std::future<InferResult> submit(Tensor input, double budget_ms = 0.0);
  /// Pin the tier explicitly (unknown tier -> immediate failed result).
  std::future<InferResult> submit_to(const std::string& tier, Tensor input);

  [[nodiscard]] int tier_index(const std::string& name) const;
  [[nodiscard]] int num_tiers() const { return static_cast<int>(tiers_.size()); }
  /// Live batch workers (1 + what the Executor budget granted).
  [[nodiscard]] int workers() const { return static_cast<int>(threads_.size()); }
  [[nodiscard]] uint64_t published() const { return next_version_.load(); }
  /// Served-latency EWMA for a tier; 0 until the tier has served.
  [[nodiscard]] double tier_latency_estimate_ms(int tier) const;
  /// Density of the tier's current snapshot; < 0 when nothing is published.
  [[nodiscard]] double tier_density(int tier) const;
  [[nodiscard]] uint64_t tier_served(int tier) const;
  [[nodiscard]] const ServingStats& stats() const { return stats_; }

  /// Idempotent: close the queue, drain it, join workers, return the
  /// borrowed Executor lanes. Called by the destructor.
  void shutdown();

 private:
  struct Tier {
    std::string name;
    SnapshotRegistry registry;
    std::atomic<double> ewma_ms{0.0};
    std::atomic<double> density{-1.0};
    std::atomic<uint64_t> served{0};
  };

  std::future<InferResult> submit_tier(int tier, Tensor input);
  static std::future<InferResult> failed_future();
  void worker_main();
  void serve_batch(std::vector<InferRequest> batch);

  ServerConfig config_;
  std::vector<std::unique_ptr<Tier>> tiers_;
  MicroBatcher batcher_;
  ServingStats stats_;
  std::atomic<uint64_t> next_version_{0};
  int granted_ = 0;  // extra Executor lanes held while running
  std::vector<std::thread> threads_;
  bool down_ = false;  // set by shutdown(); guards double-join
};

}  // namespace fedtiny::serve
