#include "serve/servable.h"

#include <utility>

#include "nn/conv2d.h"
#include "nn/fusion.h"
#include "prune/sparse_exec.h"

namespace fedtiny::serve {

namespace {

/// RAII replica borrow: pops an index off the freelist, pushes it back (and
/// wakes one waiter) on scope exit — exception-safe, so a throwing forward
/// never leaks a replica.
class Borrow {
 public:
  Borrow(std::mutex& mu, std::condition_variable& cv, std::vector<int>& free)
      : mu_(mu), cv_(cv), free_(free) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return !free_.empty(); });
    index_ = free_.back();
    free_.pop_back();
  }
  ~Borrow() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      free_.push_back(index_);
    }
    // notify_all, not notify_one: workspace_bytes() waits on the same
    // condition variable with a different predicate (full freelist); a
    // single wake could land on the wrong waiter and be lost.
    cv_.notify_all();
  }
  Borrow(const Borrow&) = delete;
  Borrow& operator=(const Borrow&) = delete;

  [[nodiscard]] int index() const { return index_; }

 private:
  std::mutex& mu_;
  std::condition_variable& cv_;
  std::vector<int>& free_;
  int index_ = -1;
};

/// One replica by the deterministic recipe: factory -> state install ->
/// conv+ReLU fusion -> CSR install -> workspace policy -> warm-up. Every
/// step is a pure function of (payload, config), so all replicas — and any
/// later rebuild from the same checkpoint — produce bitwise-equal forwards.
std::unique_ptr<nn::Model> build_replica(const fl::SparseStatePayload& payload,
                                         const prune::MaskSet& mask,
                                         const ServableConfig& config, int* sparse_layers,
                                         int* fused_pairs) {
  auto model = config.factory();
  if (model == nullptr) return nullptr;
  std::vector<Tensor> state;
  if (!fl::reconstruct_state(payload, model->prunable_indices(), state) ||
      !model->try_set_state(state)) {
    return nullptr;
  }
  int fused = 0;
  if (config.fuse_conv_relu) fused = nn::fuse_conv_relu(*model);
  const auto report =
      prune::install_sparse_execution(*model, mask, config.sparse_max_density, /*train=*/false);
  for (auto* layer : model->leaves()) {
    if (auto* conv = dynamic_cast<nn::Conv2d*>(layer)) {
      conv->set_retain_eval_workspace(config.retain_workspaces);
    }
  }
  if (config.warm_batch > 0) {
    const auto& in = model->input_shape();
    Tensor x({config.warm_batch, in[0], in[1], in[2]});
    (void)model->forward(x, nn::Mode::kEval);
  }
  if (sparse_layers != nullptr) *sparse_layers = report.sparse_layers;
  if (fused_pairs != nullptr) *fused_pairs = fused;
  return model;
}

}  // namespace

std::shared_ptr<const ServableModel> ServableModel::load(const std::string& path,
                                                         const ServableConfig& config,
                                                         uint64_t version) {
  fl::SparseStatePayload payload;
  if (!fl::load_sparse_checkpoint(path, payload)) return nullptr;
  return from_payload(payload, config, version);
}

std::shared_ptr<const ServableModel> ServableModel::from_payload(
    const fl::SparseStatePayload& payload, const ServableConfig& config, uint64_t version) {
  if (!config.factory) return nullptr;
  const auto mask = fl::payload_mask(payload);
  auto servable = std::shared_ptr<ServableModel>(new ServableModel());
  const int replicas = config.replicas > 0 ? config.replicas : 1;
  servable->pool_.reserve(static_cast<size_t>(replicas));
  for (int r = 0; r < replicas; ++r) {
    auto replica = build_replica(payload, mask, config, &servable->sparse_layers_,
                                 &servable->fused_pairs_);
    if (replica == nullptr) return nullptr;
    servable->pool_.push_back(std::move(replica));
  }
  servable->free_.resize(servable->pool_.size());
  for (size_t i = 0; i < servable->free_.size(); ++i) servable->free_[i] = static_cast<int>(i);
  servable->version_ = version;
  servable->density_ = mask.num_layers() > 0 ? mask.density() : 1.0;
  servable->num_classes_ = servable->pool_.front()->num_classes();
  servable->input_shape_ = servable->pool_.front()->input_shape();
  return servable;
}

Tensor ServableModel::forward(const Tensor& x) const {
  Borrow borrow(mu_, cv_, free_);
  nn::Model& model = *pool_[static_cast<size_t>(borrow.index())];
  return model.forward(x, nn::Mode::kEval);
}

int64_t ServableModel::workspace_bytes() const {
  // Quiesce first: waiting for a full freelist (while holding the mutex, so
  // no new borrow can start) guarantees no forward is mutating a workspace
  // while we read the sizes — a data-race-free diagnostic, at the price of
  // briefly stalling the request path.
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return free_.size() == pool_.size(); });
  int64_t total = 0;
  for (const auto& model : pool_) {
    for (auto* layer : model->leaves()) {
      if (auto* conv = dynamic_cast<nn::Conv2d*>(layer)) total += conv->workspace_bytes();
    }
  }
  return total;
}

}  // namespace fedtiny::serve
