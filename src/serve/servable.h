// ServableModel: an immutable, concurrency-ready snapshot of one sparse
// checkpoint, the unit the hot-swap registry publishes.
//
// Construction does all the expensive work once, off the request path:
// reconstruct the dense state from the FTSPRS01/v2 payload, fuse direct
// Conv2d->ReLU pairs into the GEMM epilogue, install CSR sparse forwards at
// the payload's mask, pre-size the conv workspaces with a warm-up forward.
//
// Concurrency model: eval forwards mutate per-layer workspaces, so one model
// object cannot run two forwards at once. A ServableModel therefore owns a
// pool of `replicas` identically-built models behind a freelist; forward()
// borrows one for the duration of the call (blocking when all are busy) and
// returns it. Every replica is built by the same deterministic recipe from
// the same payload, so which replica serves a request never changes the
// result: forward() output is bitwise-identical to a fresh single-threaded
// load of the same checkpoint, at any thread count (tested).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fl/payload.h"
#include "nn/model.h"
#include "tensor/tensor.h"

namespace fedtiny::serve {

struct ServableConfig {
  nn::ModelFactory factory;       // architecture the checkpoint must fit
  int replicas = 1;               // concurrent forwards supported
  float sparse_max_density = 0.5f;  // CSR install threshold (dense above)
  bool fuse_conv_relu = true;     // fold direct conv->ReLU pairs
  bool retain_workspaces = true;  // keep conv workspaces sized between calls
  int64_t warm_batch = 0;         // pre-size workspaces for this batch (0 = skip)
};

/// Immutable once built; all mutable state is per-replica and guarded by the
/// freelist. Publish/retire via shared_ptr (see SnapshotRegistry).
class ServableModel {
 public:
  /// Build from a FTSPRS01 checkpoint file. Returns nullptr when the file is
  /// missing/corrupt or does not fit the factory's architecture.
  static std::shared_ptr<const ServableModel> load(const std::string& path,
                                                   const ServableConfig& config,
                                                   uint64_t version);
  /// Build from an in-memory payload (training loop handing off a round).
  static std::shared_ptr<const ServableModel> from_payload(const fl::SparseStatePayload& payload,
                                                           const ServableConfig& config,
                                                           uint64_t version);

  /// Run one eval forward on a borrowed replica. x is [N, C, H, W]; returns
  /// [N, num_classes] logits. Blocks while all replicas are busy. const:
  /// callers share the snapshot through shared_ptr<const ServableModel>.
  Tensor forward(const Tensor& x) const;

  [[nodiscard]] uint64_t version() const { return version_; }
  /// Kept fraction of prunable weights encoded in the checkpoint mask.
  [[nodiscard]] double density() const { return density_; }
  [[nodiscard]] int sparse_layers() const { return sparse_layers_; }
  [[nodiscard]] int fused_pairs() const { return fused_pairs_; }
  [[nodiscard]] int replicas() const { return static_cast<int>(pool_.size()); }
  [[nodiscard]] int num_classes() const { return num_classes_; }
  /// Expected input shape as {C, H, W}.
  [[nodiscard]] const std::vector<int64_t>& input_shape() const { return input_shape_; }
  /// Conv workspace bytes currently held across all replicas (bounded by the
  /// largest batch each replica has seen; no-growth tested).
  [[nodiscard]] int64_t workspace_bytes() const;

  ServableModel(const ServableModel&) = delete;
  ServableModel& operator=(const ServableModel&) = delete;

 private:
  ServableModel() = default;

  std::vector<std::unique_ptr<nn::Model>> pool_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable std::vector<int> free_;  // indices into pool_, LIFO

  uint64_t version_ = 0;
  double density_ = 1.0;
  int sparse_layers_ = 0;
  int fused_pairs_ = 0;
  int num_classes_ = 0;
  std::vector<int64_t> input_shape_;
};

}  // namespace fedtiny::serve
