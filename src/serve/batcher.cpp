#include "serve/batcher.h"

#include <algorithm>
#include <map>
#include <utility>

namespace fedtiny::serve {

bool MicroBatcher::enqueue(InferRequest&& req) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) return false;
    queue_.push_back(std::move(req));
  }
  cv_.notify_one();
  return true;
}

std::vector<InferRequest> MicroBatcher::take_batch() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return {};  // closed and drained

    // 1. Aged-out head (or shutdown drain): its tier goes now, whatever the
    //    fill level — the starvation guard.
    const int head_tier = queue_.front().tier;
    const auto deadline =
        queue_.front().enqueued + std::chrono::microseconds(config_.max_delay_us);
    if (closed_ || ServeClock::now() >= deadline) {
      return extract_tier(head_tier);
    }

    // 2. Head's tier at min_fill (default 1: greedy — the caller is an idle
    //    worker, and holding queued work back only adds latency).
    const int64_t min_fill =
        std::max<int64_t>(1, std::min<int64_t>(config_.min_fill, config_.max_batch));
    int64_t head_count = 0;
    for (const auto& req : queue_) {
      if (req.tier == head_tier && ++head_count >= min_fill) break;
    }
    if (head_count >= min_fill) return extract_tier(head_tier);

    // 3. Any other tier at max_batch dispatches full immediately.
    std::map<int, int64_t> per_tier;
    int full_tier = -1;
    for (const auto& req : queue_) {
      if (++per_tier[req.tier] >= config_.max_batch) {
        full_tier = req.tier;
        break;
      }
    }
    if (full_tier >= 0) return extract_tier(full_tier);

    // 4. Wait out the head's delay budget; arrivals re-run the checks.
    cv_.wait_until(lk, deadline);
  }
}

std::vector<InferRequest> MicroBatcher::extract_tier(int tier) {
  std::vector<InferRequest> batch;
  for (auto it = queue_.begin();
       it != queue_.end() && static_cast<int64_t>(batch.size()) < config_.max_batch;) {
    if (it->tier == tier) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  // Leftover work (another tier, or overflow beyond max_batch): hand it to
  // another worker rather than waiting for the next enqueue's notify.
  if (!queue_.empty()) cv_.notify_one();
  return batch;
}

void MicroBatcher::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool MicroBatcher::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

size_t MicroBatcher::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

}  // namespace fedtiny::serve
