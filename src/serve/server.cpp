#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "tensor/parallel.h"

namespace fedtiny::serve {

namespace {

double ms_between(ServeClock::time_point from, ServeClock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

int argmax_row(const float* row, int64_t n) {
  int best = 0;
  for (int64_t j = 1; j < n; ++j) {
    if (row[j] > row[best]) best = static_cast<int>(j);
  }
  return best;
}

}  // namespace

int route_by_budget(std::span<const double> est_ms, double budget_ms) {
  if (est_ms.empty()) return -1;
  if (budget_ms <= 0.0) return 0;
  int cheapest = 0;
  for (size_t i = 0; i < est_ms.size(); ++i) {
    if (est_ms[i] <= 0.0 || est_ms[i] <= budget_ms) return static_cast<int>(i);
    if (est_ms[i] < est_ms[static_cast<size_t>(cheapest)]) cheapest = static_cast<int>(i);
  }
  return cheapest;
}

InferenceServer::InferenceServer(ServerConfig config)
    : config_(std::move(config)), batcher_(config_.batcher) {
  if (config_.tiers.empty()) config_.tiers.push_back("default");
  tiers_.reserve(config_.tiers.size());
  for (const auto& name : config_.tiers) {
    tiers_.push_back(std::make_unique<Tier>());
    tiers_.back()->name = name;
  }
  // One worker stands in for the submitters' lane; extras come out of the
  // process-wide Executor budget and go back at shutdown, so serving composes
  // with kernel lanes instead of oversubscribing the machine.
  const int want = std::max(1, config_.workers);
  granted_ = Executor::instance().acquire(want - 1);
  const int workers = 1 + granted_;
  threads_.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads_.emplace_back([this] { worker_main(); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

void InferenceServer::shutdown() {
  if (down_) return;
  down_ = true;
  batcher_.close();
  for (auto& t : threads_) t.join();
  Executor::instance().release(granted_);
  granted_ = 0;
}

uint64_t InferenceServer::publish(const std::string& tier, const fl::SparseStatePayload& payload) {
  const int idx = tier_index(tier);
  if (idx < 0) return 0;
  // Version numbers are allocated before the build, so concurrent publishes
  // to different tiers stay monotone; a rejected payload burns its number
  // (gaps are fine — versions order snapshots, they do not count them).
  const uint64_t version = next_version_.fetch_add(1) + 1;
  ServableConfig sc;
  sc.factory = config_.factory;
  sc.replicas = workers();
  sc.sparse_max_density = config_.sparse_max_density;
  sc.fuse_conv_relu = config_.fuse_conv_relu;
  sc.retain_workspaces = true;
  sc.warm_batch = config_.warm_batch;
  auto snap = ServableModel::from_payload(payload, sc, version);
  if (snap == nullptr) return 0;
  auto& t = *tiers_[static_cast<size_t>(idx)];
  t.density.store(snap->density(), std::memory_order_relaxed);
  t.registry.publish(std::move(snap));
  stats_.record_swap();
  return version;
}

uint64_t InferenceServer::publish_checkpoint(const std::string& tier, const std::string& path) {
  fl::SparseStatePayload payload;
  if (!fl::load_sparse_checkpoint(path, payload)) return 0;
  return publish(tier, payload);
}

std::future<InferResult> InferenceServer::failed_future() {
  std::promise<InferResult> p;
  p.set_value(InferResult{});
  return p.get_future();
}

std::future<InferResult> InferenceServer::submit(Tensor input, double budget_ms) {
  // Candidates: published tiers, kept in config (quality) order.
  std::vector<int> cand;
  std::vector<double> est;
  cand.reserve(tiers_.size());
  est.reserve(tiers_.size());
  for (size_t i = 0; i < tiers_.size(); ++i) {
    if (tiers_[i]->density.load(std::memory_order_relaxed) >= 0.0) {
      cand.push_back(static_cast<int>(i));
      est.push_back(tiers_[i]->ewma_ms.load(std::memory_order_relaxed));
    }
  }
  const int pick = route_by_budget(est, budget_ms);
  if (pick < 0) {
    stats_.record_failed();
    return failed_future();
  }
  return submit_tier(cand[static_cast<size_t>(pick)], std::move(input));
}

std::future<InferResult> InferenceServer::submit_to(const std::string& tier, Tensor input) {
  const int idx = tier_index(tier);
  if (idx < 0) {
    stats_.record_failed();
    return failed_future();
  }
  return submit_tier(idx, std::move(input));
}

std::future<InferResult> InferenceServer::submit_tier(int tier, Tensor input) {
  InferRequest req;
  req.input = std::move(input);
  req.tier = tier;
  req.enqueued = ServeClock::now();
  auto future = req.done.get_future();
  if (!batcher_.enqueue(std::move(req))) {
    // Shut down: the batcher refused without consuming, so the promise is
    // still ours — fail the request instead of dropping it silently.
    InferResult r;
    r.tier = tier;
    req.done.set_value(std::move(r));
    stats_.record_failed();
  }
  return future;
}

int InferenceServer::tier_index(const std::string& name) const {
  for (size_t i = 0; i < tiers_.size(); ++i) {
    if (tiers_[i]->name == name) return static_cast<int>(i);
  }
  return -1;
}

double InferenceServer::tier_latency_estimate_ms(int tier) const {
  if (tier < 0 || tier >= num_tiers()) return 0.0;
  return tiers_[static_cast<size_t>(tier)]->ewma_ms.load(std::memory_order_relaxed);
}

double InferenceServer::tier_density(int tier) const {
  if (tier < 0 || tier >= num_tiers()) return -1.0;
  return tiers_[static_cast<size_t>(tier)]->density.load(std::memory_order_relaxed);
}

uint64_t InferenceServer::tier_served(int tier) const {
  if (tier < 0 || tier >= num_tiers()) return 0;
  return tiers_[static_cast<size_t>(tier)]->served.load(std::memory_order_relaxed);
}

void InferenceServer::worker_main() {
  for (;;) {
    auto batch = batcher_.take_batch();
    if (batch.empty()) return;  // closed and drained
    serve_batch(std::move(batch));
  }
}

void InferenceServer::serve_batch(std::vector<InferRequest> batch) {
  const auto dispatched = ServeClock::now();
  auto& tier = *tiers_[static_cast<size_t>(batch.front().tier)];
  const auto snap = tier.registry.current();

  // Split usable requests from rejects (no snapshot on the tier yet, or an
  // input that does not match the snapshot's geometry).
  std::vector<size_t> good;
  good.reserve(batch.size());
  int64_t sample_numel = 0;
  if (snap != nullptr) {
    const auto& in = snap->input_shape();
    sample_numel = in[0] * in[1] * in[2];
    for (size_t i = 0; i < batch.size(); ++i) {
      const Tensor& x = batch[i].input;
      const bool shape_ok = (x.rank() == 3 && x.numel() == sample_numel) ||
                            (x.rank() == 4 && x.dim(0) == 1 && x.numel() == sample_numel);
      if (shape_ok) good.push_back(i);
    }
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    if (std::find(good.begin(), good.end(), i) != good.end()) continue;
    InferResult r;
    r.tier = batch[i].tier;
    r.total_ms = ms_between(batch[i].enqueued, ServeClock::now());
    batch[i].done.set_value(std::move(r));
    stats_.record_failed();
  }
  if (good.empty()) return;

  // One batched forward for the whole micro-batch; the per-request rows are
  // bitwise-equal to batch-1 forwards (the batched conv pipeline's row
  // invariant), so micro-batching is invisible to correctness.
  const auto& in = snap->input_shape();
  const auto n = static_cast<int64_t>(good.size());
  Tensor x({n, in[0], in[1], in[2]});
  for (int64_t i = 0; i < n; ++i) {
    std::memcpy(x.data() + i * sample_numel, batch[good[static_cast<size_t>(i)]].input.data(),
                sizeof(float) * static_cast<size_t>(sample_numel));
  }
  Tensor logits = snap->forward(x);
  const auto finished = ServeClock::now();
  const int64_t classes = logits.dim(1);

  double sum_ms = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    auto& req = batch[good[static_cast<size_t>(i)]];
    InferResult r;
    r.logits = Tensor({classes});
    std::memcpy(r.logits.data(), logits.data() + i * classes,
                sizeof(float) * static_cast<size_t>(classes));
    r.predicted = argmax_row(r.logits.data(), classes);
    r.version = snap->version();
    r.tier = req.tier;
    r.batch_size = n;
    r.queue_ms = ms_between(req.enqueued, dispatched);
    r.total_ms = ms_between(req.enqueued, finished);
    r.ok = true;
    sum_ms += r.total_ms;
    stats_.record_served(r.total_ms);
    req.done.set_value(std::move(r));
  }
  stats_.record_batch(n);
  tier.served.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);

  // Served-latency EWMA feeds route_by_budget. Benignly racy between
  // workers (both observed real latencies; last store wins).
  const double mean = sum_ms / static_cast<double>(n);
  const double old = tier.ewma_ms.load(std::memory_order_relaxed);
  tier.ewma_ms.store(old <= 0.0 ? mean : 0.8 * old + 0.2 * mean, std::memory_order_relaxed);
}

}  // namespace fedtiny::serve
