#include "serve/stats.h"

#include <algorithm>
#include <cmath>

namespace fedtiny::serve {

void ServingStats::record_served(double total_ms) {
  std::lock_guard<std::mutex> lk(mu_);
  ++served_;
  if (samples_.size() < kMaxSamples) samples_.push_back(static_cast<float>(total_ms));
}

void ServingStats::record_batch(int64_t size) {
  std::lock_guard<std::mutex> lk(mu_);
  ++batches_;
  ++hist_[size];
}

void ServingStats::record_failed(uint64_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  failed_ += n;
}

void ServingStats::record_swap() {
  std::lock_guard<std::mutex> lk(mu_);
  ++swaps_;
}

LatencySummary ServingStats::latency() const {
  std::vector<float> samples;
  uint64_t count = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    samples = samples_;
    count = served_;
  }
  LatencySummary out;
  out.count = count;
  if (samples.empty()) return out;
  double sum = 0.0;
  for (float s : samples) sum += s;
  out.mean_ms = sum / static_cast<double>(samples.size());
  auto percentile = [&](double p) {
    // Nearest-rank on the sample set; nth_element instead of a full sort.
    const auto rank = static_cast<size_t>(
        std::min<double>(static_cast<double>(samples.size()) - 1.0,
                         std::ceil(p * static_cast<double>(samples.size())) - 1.0));
    std::nth_element(samples.begin(), samples.begin() + static_cast<ptrdiff_t>(rank),
                     samples.end());
    return static_cast<double>(samples[rank]);
  };
  out.p50_ms = percentile(0.50);
  out.p95_ms = percentile(0.95);
  out.p99_ms = percentile(0.99);
  out.max_ms = static_cast<double>(*std::max_element(samples.begin(), samples.end()));
  return out;
}

std::map<int64_t, uint64_t> ServingStats::batch_histogram() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hist_;
}

uint64_t ServingStats::served() const {
  std::lock_guard<std::mutex> lk(mu_);
  return served_;
}

uint64_t ServingStats::failed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return failed_;
}

uint64_t ServingStats::swaps() const {
  std::lock_guard<std::mutex> lk(mu_);
  return swaps_;
}

uint64_t ServingStats::batches() const {
  std::lock_guard<std::mutex> lk(mu_);
  return batches_;
}

double ServingStats::mean_batch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return batches_ > 0 ? static_cast<double>(served_) / static_cast<double>(batches_) : 0.0;
}

void ServingStats::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  samples_.clear();
  served_ = failed_ = swaps_ = batches_ = 0;
  hist_.clear();
}

}  // namespace fedtiny::serve
