// Serving-side counters: request latencies (for p50/p95/p99), dispatched
// micro-batch sizes, served/failed/swap totals. One mutex; every record is
// a few stores, so contention is negligible next to a forward pass.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace fedtiny::serve {

struct LatencySummary {
  uint64_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

class ServingStats {
 public:
  /// One served request: end-to-end latency (enqueue -> response ready).
  void record_served(double total_ms);
  /// One dispatched micro-batch of `size` requests.
  void record_batch(int64_t size);
  void record_failed(uint64_t n = 1);
  void record_swap();

  [[nodiscard]] LatencySummary latency() const;
  /// batch size -> number of batches dispatched at that size.
  [[nodiscard]] std::map<int64_t, uint64_t> batch_histogram() const;
  [[nodiscard]] uint64_t served() const;
  [[nodiscard]] uint64_t failed() const;
  [[nodiscard]] uint64_t swaps() const;
  [[nodiscard]] uint64_t batches() const;
  /// Mean requests per dispatched batch (0 when nothing dispatched).
  [[nodiscard]] double mean_batch() const;
  void reset();

 private:
  // Latency samples are capped (reservoir-free: first kMaxSamples requests)
  // so a long-running server cannot grow without bound; count keeps the true
  // total. 1M samples x 4B = 4 MB worst case.
  static constexpr size_t kMaxSamples = 1u << 20;

  mutable std::mutex mu_;
  std::vector<float> samples_;
  uint64_t served_ = 0;
  uint64_t failed_ = 0;
  uint64_t swaps_ = 0;
  uint64_t batches_ = 0;
  std::map<int64_t, uint64_t> hist_;
};

}  // namespace fedtiny::serve
