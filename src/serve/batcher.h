// Dynamic micro-batch assembler: the bridge between per-request producers
// and the batched im2col+GEMM pipeline. Requests from any number of client
// threads land in one queue; worker threads call take_batch(), which hands
// back a tier-homogeneous batch assembled under three knobs:
//
//   max_batch     — never more requests than one forward should carry;
//   min_fill      — how many co-tier requests the head's tier should gather
//                   before an idle worker takes it (default 1 = greedy);
//   max_delay_us  — how long the oldest queued request may wait for
//                   min_fill company before it dispatches undersized.
//
// Dispatch policy (checked in this order, under the queue mutex):
//   1. The head-of-queue request's delay budget is spent (or the batcher is
//      closed) -> dispatch the head's tier now. Heads age out first, so a
//      full-batch stream on one tier can never starve another tier.
//   2. The head's tier has min_fill requests queued -> dispatch it (up to
//      max_batch). A take_batch() caller is by definition an idle worker,
//      so with the default min_fill of 1 queued work is never held back:
//      batches grow through the convoy effect instead (requests that arrive
//      while every worker is busy pile up for the next take). min_fill > 1
//      trades head latency (bounded by max_delay_us) for fuller batches —
//      only worth it when per-forward fixed costs dominate.
//   3. Some other tier has max_batch requests queued -> dispatch it full.
//   4. Otherwise sleep until the head's deadline (new arrivals re-check).
//
// close() wakes everyone; take_batch() then drains the queue to empty —
// queued requests are always served, never dropped — and returns an empty
// batch only when closed and drained (the worker-exit signal). enqueue()
// after close() is refused so the caller can fail the request explicitly.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include <condition_variable>

#include "tensor/tensor.h"

namespace fedtiny::serve {

using ServeClock = std::chrono::steady_clock;

/// One served inference outcome, delivered through the request's future.
struct InferResult {
  Tensor logits;           // [num_classes] row for this request
  int predicted = -1;      // argmax over logits (tie -> lowest class)
  uint64_t version = 0;    // snapshot version that served it
  int tier = -1;           // tier index that served it
  int64_t batch_size = 0;  // size of the micro-batch it rode in
  double queue_ms = 0.0;   // enqueue -> batch dispatch
  double total_ms = 0.0;   // enqueue -> response ready
  bool ok = false;         // false: rejected (bad shape, no snapshot, shutdown)
};

struct InferRequest {
  Tensor input;  // [C, H, W] or [1, C, H, W]
  int tier = 0;  // routing decision, made before enqueue
  std::promise<InferResult> done;
  ServeClock::time_point enqueued{};
};

struct BatcherConfig {
  int64_t max_batch = 32;
  int64_t min_fill = 1;  // clamped to [1, max_batch]
  int64_t max_delay_us = 200;
};

class MicroBatcher {
 public:
  explicit MicroBatcher(BatcherConfig config) : config_(config) {}

  /// False after close(): the request was NOT consumed and the caller still
  /// owns the promise (fail it explicitly). True: the batcher moved it out
  /// and owns it until dispatch.
  bool enqueue(InferRequest&& req);

  /// Block for the next tier-homogeneous batch (policy above). Empty vector
  /// = closed and fully drained; the calling worker should exit.
  std::vector<InferRequest> take_batch();

  void close();
  [[nodiscard]] bool closed() const;
  [[nodiscard]] size_t pending() const;
  [[nodiscard]] const BatcherConfig& config() const { return config_; }

 private:
  /// Remove up to max_batch requests of `tier` from the queue, preserving
  /// arrival order. Caller holds mu_.
  std::vector<InferRequest> extract_tier(int tier);

  BatcherConfig config_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<InferRequest> queue_;
  bool closed_ = false;
};

}  // namespace fedtiny::serve
