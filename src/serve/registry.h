// Hot-swap snapshot slot, RCU style over std::atomic<std::shared_ptr>.
//
// Readers call current() on every request: an atomic acquire load of the
// shared pointer — no reader-side mutex, no blocking on the publisher, and
// the returned reference keeps the snapshot alive for exactly the duration
// of the request. publish() is a pointer store: the expensive snapshot build
// happens before, outside any shared state. The retired snapshot's grace
// period is the shared_ptr refcount itself — it is destroyed (replicas, CSR
// state, workspaces) precisely when the last in-flight request that loaded
// it drops its reference, never under a reader's feet and never leaked.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "serve/servable.h"

namespace fedtiny::serve {

class SnapshotRegistry {
 public:
  /// The snapshot to serve this request from; nullptr before first publish.
  [[nodiscard]] std::shared_ptr<const ServableModel> current() const {
    return slot_.load(std::memory_order_acquire);
  }

  /// Install `next` (may be nullptr to take the tier out of service). The
  /// previous snapshot drains naturally via refcount.
  void publish(std::shared_ptr<const ServableModel> next) {
    slot_.store(std::move(next), std::memory_order_release);
    publishes_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] uint64_t publishes() const {
    return publishes_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::shared_ptr<const ServableModel>> slot_;
  std::atomic<uint64_t> publishes_{0};
};

}  // namespace fedtiny::serve
