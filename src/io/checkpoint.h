// Checkpointing: save/load model state and pruning masks to a simple
// versioned binary format. Lets a deployment pipeline train once (server)
// and ship specialized sparse models to device classes, and lets long
// experiments resume.
//
// Format (little-endian):
//   magic "FTCKPT01" | u64 tensor_count | per tensor: u32 rank, i64 dims[],
//   f32 data[] — for states.
//   magic "FTMASK01" | u64 layer_count | per layer: u64 size, u8 bits[]
//   (byte per entry; simplicity over compactness) — for masks.
//
// For a combined masks+state round-trip in one compact file, see the sparse
// payload checkpoint ("FTSPRS01") in fl/payload.h: the mask lives in the
// payload's bitmaps and kept values replace the dense tensor bodies.
#pragma once

#include <string>
#include <vector>

#include "prune/mask.h"
#include "tensor/tensor.h"

namespace fedtiny::io {

/// Write a model state (as returned by Model::state()). Returns false on
/// I/O failure.
bool save_state(const std::string& path, const std::vector<Tensor>& state);

/// Read a model state; returns an empty vector on failure or bad format.
std::vector<Tensor> load_state(const std::string& path);

/// Write a pruning mask. Returns false on I/O failure.
bool save_mask(const std::string& path, const prune::MaskSet& mask);

/// Read a pruning mask; returns an empty MaskSet on failure or bad format.
prune::MaskSet load_mask(const std::string& path);

}  // namespace fedtiny::io
