// Little-endian byte-buffer writer/reader shared by the sparse-exchange
// payloads and the checkpoint blobs. The writer's buffer size IS the
// measured wire size reported in RoundStats — no analytic estimate involved.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

namespace fedtiny::io {

class ByteWriter {
 public:
  template <typename T>
  void write_pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const uint8_t*>(&value);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  void write_u32(uint32_t v) { write_pod(v); }
  void write_u64(uint64_t v) { write_pod(v); }
  void write_i64(int64_t v) { write_pod(v); }
  void write_f32(float v) { write_pod(v); }

  void write_bytes(std::span<const uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  template <typename T>
  void write_array(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const uint8_t*>(values.data());
    buf_.insert(buf_.end(), p, p + values.size_bytes());
  }

  void reserve(size_t bytes) { buf_.reserve(bytes); }

  [[nodiscard]] size_t size() const { return buf_.size(); }
  [[nodiscard]] const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked reader; after any failed read, ok() is false and all
/// further reads fail (monotone error latch, checked once at the end).
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  template <typename T>
  bool read_pod(T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!ok_ || data_.size() - pos_ < sizeof(T)) {
      ok_ = false;
      return false;
    }
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  template <typename T>
  bool read_array(std::span<T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t bytes = values.size_bytes();
    if (!ok_ || data_.size() - pos_ < bytes) {
      ok_ = false;
      return false;
    }
    // An empty span may carry a null data() (zero-numel tensor from a
    // corrupt wire); memcpy's pointers must be non-null even for n == 0.
    if (bytes != 0) std::memcpy(values.data(), data_.data() + pos_, bytes);
    pos_ += bytes;
    return true;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace fedtiny::io
