#include "io/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "io/serialize.h"

namespace fedtiny::io {

namespace {

constexpr char kStateMagic[8] = {'F', 'T', 'C', 'K', 'P', 'T', '0', '1'};
constexpr char kMaskMagic[8] = {'F', 'T', 'M', 'A', 'S', 'K', '0', '1'};
constexpr uint64_t kMaxTensors = 1u << 20;
constexpr uint32_t kMaxRank = 8;
// Largest tensor a checkpoint may describe (mirrors fl/payload.cpp's bound);
// also guards the numel product against int64 overflow.
constexpr int64_t kMaxTensorNumel = int64_t{1} << 33;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Whole file into memory; empty + false on I/O failure. Loading through a
/// ByteReader over the bytes (instead of streaming ifstream reads) gives
/// every length field a bounds check against the real file size before any
/// allocation — a bit-flipped count can no longer demand gigabytes.
bool read_file(const std::string& path, std::vector<uint8_t>& out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return false;
  const std::streamsize size = in.tellg();
  if (size < 0) return false;
  out.resize(static_cast<size_t>(size));
  in.seekg(0);
  if (size > 0) in.read(reinterpret_cast<char*>(out.data()), size);
  return static_cast<bool>(in);
}

bool check_magic(ByteReader& r, const char (&magic)[8]) {
  char got[8];
  return r.read_array(std::span<char>(got, sizeof(got))) &&
         std::memcmp(got, magic, sizeof(got)) == 0;
}

}  // namespace

bool save_state(const std::string& path, const std::vector<Tensor>& state) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(kStateMagic, sizeof(kStateMagic));
  write_pod(out, static_cast<uint64_t>(state.size()));
  for (const auto& t : state) {
    write_pod(out, static_cast<uint32_t>(t.rank()));
    for (int i = 0; i < t.rank(); ++i) write_pod(out, t.dim(i));
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  return static_cast<bool>(out);
}

std::vector<Tensor> load_state(const std::string& path) {
  std::vector<uint8_t> bytes;
  if (!read_file(path, bytes)) return {};
  ByteReader r(bytes);
  if (!check_magic(r, kStateMagic)) return {};
  uint64_t count = 0;
  if (!r.read_pod(count) || count > kMaxTensors) return {};
  std::vector<Tensor> state;
  state.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t rank = 0;
    if (!r.read_pod(rank) || rank > kMaxRank) return {};
    std::vector<int64_t> shape(rank);
    int64_t numel = 1;
    for (auto& d : shape) {
      if (!r.read_pod(d) || d < 0 || d > kMaxTensorNumel) return {};
      if (d > 1 && numel > kMaxTensorNumel / d) return {};  // pre-multiply: no overflow
      numel *= std::max<int64_t>(d, 1);
    }
    // The body must actually be in the file before the tensor is allocated.
    if (static_cast<uint64_t>(numel) * sizeof(float) > r.remaining()) return {};
    Tensor t(shape);
    if (!r.read_array(std::span<float>(t.data(), static_cast<size_t>(t.numel())))) return {};
    state.push_back(std::move(t));
  }
  return state;
}

bool save_mask(const std::string& path, const prune::MaskSet& mask) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(kMaskMagic, sizeof(kMaskMagic));
  write_pod(out, static_cast<uint64_t>(mask.num_layers()));
  for (size_t l = 0; l < mask.num_layers(); ++l) {
    const auto& layer = mask.layer(l);
    write_pod(out, static_cast<uint64_t>(layer.size()));
    out.write(reinterpret_cast<const char*>(layer.data()),
              static_cast<std::streamsize>(layer.size()));
  }
  return static_cast<bool>(out);
}

prune::MaskSet load_mask(const std::string& path) {
  prune::MaskSet mask;
  std::vector<uint8_t> bytes;
  if (!read_file(path, bytes)) return mask;
  ByteReader r(bytes);
  if (!check_magic(r, kMaskMagic)) return mask;
  uint64_t layers = 0;
  if (!r.read_pod(layers) || layers > kMaxTensors) return mask;
  for (uint64_t l = 0; l < layers; ++l) {
    uint64_t size = 0;
    // Bound by the bytes actually present, not a fixed ceiling: a corrupted
    // length field must fail before the allocation, not after.
    if (!r.read_pod(size) || size > r.remaining()) return prune::MaskSet();
    std::vector<uint8_t> layer(size);
    if (!r.read_array(std::span<uint8_t>(layer))) return prune::MaskSet();
    mask.append_layer(std::move(layer));
  }
  return mask;
}

}  // namespace fedtiny::io
