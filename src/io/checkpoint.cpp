#include "io/checkpoint.h"

#include <cstring>
#include <fstream>

namespace fedtiny::io {

namespace {

constexpr char kStateMagic[8] = {'F', 'T', 'C', 'K', 'P', 'T', '0', '1'};
constexpr char kMaskMagic[8] = {'F', 'T', 'M', 'A', 'S', 'K', '0', '1'};

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool read_pod(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

bool save_state(const std::string& path, const std::vector<Tensor>& state) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(kStateMagic, sizeof(kStateMagic));
  write_pod(out, static_cast<uint64_t>(state.size()));
  for (const auto& t : state) {
    write_pod(out, static_cast<uint32_t>(t.rank()));
    for (int i = 0; i < t.rank(); ++i) write_pod(out, t.dim(i));
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  return static_cast<bool>(out);
}

std::vector<Tensor> load_state(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kStateMagic, sizeof(magic)) != 0) return {};
  uint64_t count = 0;
  if (!read_pod(in, count) || count > (1u << 20)) return {};
  std::vector<Tensor> state;
  state.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t rank = 0;
    if (!read_pod(in, rank) || rank > 8) return {};
    std::vector<int64_t> shape(rank);
    for (auto& d : shape) {
      if (!read_pod(in, d) || d < 0) return {};
    }
    Tensor t(shape);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
    if (!in) return {};
    state.push_back(std::move(t));
  }
  return state;
}

bool save_mask(const std::string& path, const prune::MaskSet& mask) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(kMaskMagic, sizeof(kMaskMagic));
  write_pod(out, static_cast<uint64_t>(mask.num_layers()));
  for (size_t l = 0; l < mask.num_layers(); ++l) {
    const auto& layer = mask.layer(l);
    write_pod(out, static_cast<uint64_t>(layer.size()));
    out.write(reinterpret_cast<const char*>(layer.data()),
              static_cast<std::streamsize>(layer.size()));
  }
  return static_cast<bool>(out);
}

prune::MaskSet load_mask(const std::string& path) {
  prune::MaskSet mask;
  std::ifstream in(path, std::ios::binary);
  if (!in) return mask;
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMaskMagic, sizeof(magic)) != 0) return mask;
  uint64_t layers = 0;
  if (!read_pod(in, layers) || layers > (1u << 20)) return mask;
  for (uint64_t l = 0; l < layers; ++l) {
    uint64_t size = 0;
    if (!read_pod(in, size) || size > (1ull << 33)) return prune::MaskSet();
    std::vector<uint8_t> layer(size);
    in.read(reinterpret_cast<char*>(layer.data()), static_cast<std::streamsize>(size));
    if (!in) return prune::MaskSet();
    mask.append_layer(std::move(layer));
  }
  return mask;
}

}  // namespace fedtiny::io
